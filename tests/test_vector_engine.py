"""Byte-parity gate for ``engine="vector"``.

The vector engine's contract is absolute: it may not change a single
stored byte.  These tests enforce it the strong way — full
``SimulationResult.to_dict()`` and ``StatGroup.as_dict()`` equality plus
deep post-run state comparison (controller counters and energies, bank
row/busy state, tag contents *and LRU orders*, predictor tables) for
every registered design, across workload profiles and seeds, including
randomized traces.  Plus the edge cases that historically break
segmented replay: empty segments, single requests, warm-up boundaries
landing exactly on segment edges, and continuation runs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.caches.registry import design_names
from repro.mem.request import AccessType, MemoryRequest
from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulator
from repro.vector import HAS_NUMPY
import repro.vector.engine as vector_engine


def small_config(profile="web_search", design="footprint", seed=0, requests=12_000):
    return SimulationConfig.scaled(
        profile, design, 256, scale=256, num_requests=requests, seed=seed
    )


def state_snapshot(sim):
    """Every observable post-run state of the simulated system."""
    cache = sim.system.cache
    snap = {"stats": dict(sorted(cache.stats.as_dict().items()))}
    for name in ("stacked", "offchip"):
        controller = getattr(cache, name, None)
        if controller is None:
            continue
        snap[name] = {
            "access": controller.access_count,
            "rowhit": controller.row_hit_count,
            "busy": controller.busy_cpu_cycles,
            "bytes": (controller.bytes_read, controller.bytes_written),
            "energy": (
                controller.energy.activate_precharge_nj,
                controller.energy.read_nj,
                controller.energy.write_nj,
            ),
            "banks": [
                (bank._open_row, bank.busy_until, bank.activate_count,
                 bank.precharge_count)
                for channel in controller._banks
                for bank in channel
            ],
        }
    sram = None
    if hasattr(cache, "tags") and hasattr(cache.tags, "_tags"):
        sram = cache.tags._tags
    elif hasattr(cache, "_tags"):
        sram = cache._tags
    if sram is not None:
        snap["tags"] = [
            (sorted((key, repr(value)) for key, value in entries.items()),
             list(policy._order))
            for entries, policy in zip(sram._entries, sram._policies)
        ]
    fht = getattr(cache, "fht", None)
    if fht is not None:
        snap["fht"] = (
            (fht.lookups, fht.hits, fht.updates, fht.stale_updates),
            [
                (sorted((k, v.footprint_mask) for k, v in entries.items()),
                 list(policy._order))
                for entries, policy in zip(
                    fht._table._entries, fht._table._policies
                )
            ],
        )
        stats = cache.predictor_stats
        snap["predictor"] = (
            stats.covered_blocks,
            stats.underpredicted_blocks,
            stats.overpredicted_blocks,
        )
    singleton = getattr(cache, "singleton_table", None)
    if singleton is not None:
        snap["singleton"] = (
            (singleton.recorded, singleton.second_access_hits),
            [
                (sorted((k, (v.pc, v.offset)) for k, v in entries.items()),
                 list(policy._order))
                for entries, policy in zip(
                    singleton._table._entries, singleton._table._policies
                )
            ],
        )
    snap["core_time"] = list(sim.perf._core_time)
    return snap


def run_both(config, trace=None):
    """(interp result+state, vector result+state) for one config."""
    outcomes = []
    for engine in ("interp", "vector"):
        sim = Simulator(config, engine=engine)
        result = sim.run(trace=trace)
        outcomes.append((result.to_dict(), state_snapshot(sim)))
    return outcomes


def assert_parity(config, trace=None):
    (interp_result, interp_state), (vector_result, vector_state) = run_both(
        config, trace=trace
    )
    assert interp_result == vector_result
    assert interp_state == vector_state


needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")


@needs_numpy
class TestEquivalenceEveryDesign:
    """The gate itself: every design, multiple profiles and seeds."""

    @pytest.mark.parametrize("design", design_names())
    @pytest.mark.parametrize("profile", ("web_search", "data_serving"))
    def test_design_profile_parity(self, design, profile):
        assert_parity(small_config(profile=profile, design=design))

    @pytest.mark.parametrize("seed", (1, 7, 42))
    def test_randomized_seeds_footprint(self, seed):
        assert_parity(small_config(design="footprint", seed=seed))

    @pytest.mark.parametrize("design", ("page", "baseline"))
    def test_randomized_seeds_other_kernels(self, design):
        assert_parity(small_config(design=design, seed=3))


@needs_numpy
class TestSegmentEdges:
    def test_empty_trace(self):
        assert_parity(small_config(), trace=[])

    def test_single_request(self):
        trace = [MemoryRequest(address=0x1000, pc=0x400, core_id=0)]
        assert_parity(small_config(), trace=trace)

    def test_tiny_segments_split_runs(self, monkeypatch):
        # A prime segment size forces run boundaries everywhere: inside
        # the warm-up, at the warm-up edge, and at the trace tail.
        monkeypatch.setattr(vector_engine, "SEGMENT_REQUESTS", 257)
        assert_parity(small_config(requests=3_000))

    def test_warmup_exactly_at_segment_edge(self, monkeypatch):
        # num_requests = 4 segments, warm-up = 2 segments: the stats
        # reset lands precisely on a segment boundary.
        monkeypatch.setattr(vector_engine, "SEGMENT_REQUESTS", 500)
        assert_parity(small_config(requests=2_000))

    def test_trace_ends_at_warmup_boundary(self):
        # A trace exactly as long as the warm-up: zero measured requests
        # in the reference; the vector engine must agree.
        config = small_config(requests=2_000)
        trace = [
            MemoryRequest(address=(i % 64) * 2048, pc=0x400, core_id=i % 16)
            for i in range(config.warmup_requests)
        ]
        assert_parity(config, trace=trace)

    def test_continuation_run_parity(self):
        # Two back-to-back run() calls on one Simulator continue the
        # same request stream; the second run must match per engine.
        results = {}
        for engine in ("interp", "vector"):
            sim = Simulator(small_config(requests=6_000), engine=engine)
            sim.run()
            results[engine] = sim.run().to_dict()
        assert results["interp"] == results["vector"]

    def test_trace_can_grow_after_vector_run(self):
        # Segment views pin the trace's columnar buffers; the engine
        # must drop them so the shared cache can keep materialising.
        config = small_config(requests=4_000)
        sim = Simulator(config, engine="vector")
        sim.run()
        sim.run()  # continuation extends the cached trace in place


class TestEngineSelection:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(small_config(), engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            dataclasses.replace(small_config(), engine="warp")

    def test_engine_excluded_from_config_identity(self):
        interp = small_config()
        vector = dataclasses.replace(interp, engine="vector")
        assert interp == vector
        assert hash(interp) == hash(vector)
        assert "engine" not in interp.to_dict()
        assert "engine" not in vector.to_dict()

    def test_runner_honours_repro_engine(self, monkeypatch):
        from repro.exp import runner as runner_module
        from repro.exp.spec import ExperimentPoint

        seen = {}
        real = runner_module.Simulator

        def recording(config, engine=None):
            seen["engine"] = engine
            return real(config, engine=engine)

        monkeypatch.setattr(runner_module, "Simulator", recording)
        point = ExperimentPoint(
            workload="web_search", design="baseline", capacity_mb=256,
            num_requests=500, scale=256,
        )
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        runner_module.run_point(point)
        assert seen["engine"] is None
        if HAS_NUMPY:
            monkeypatch.setenv("REPRO_ENGINE", "vector")
            runner_module.run_point(point)
            assert seen["engine"] == "vector"


class TestWithoutNumpy:
    """The default engine must work on a NumPy-free interpreter."""

    BLOCKER = (
        "import sys\n"
        "class _Block:\n"
        "    def find_spec(self, name, path=None, target=None):\n"
        "        if name == 'numpy' or name.startswith('numpy.'):\n"
        "            raise ImportError('numpy blocked for test')\n"
        "        return None\n"
        "sys.meta_path.insert(0, _Block())\n"
        "for mod in list(sys.modules):\n"
        "    if mod == 'numpy' or mod.startswith('numpy.'):\n"
        "        del sys.modules[mod]\n"
    )

    def _run(self, body):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        return subprocess.run(
            [sys.executable, "-c", self.BLOCKER + body],
            capture_output=True, text=True, env=env, timeout=300,
        )

    def test_interp_engine_runs_without_numpy(self):
        proc = self._run(
            "from repro.sim.simulator import quick_run\n"
            "result = quick_run('web_search', design='footprint',"
            " num_requests=2000)\n"
            "print(result.miss_ratio >= 0)\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "True" in proc.stdout

    def test_vector_engine_raises_without_numpy(self):
        proc = self._run(
            "from repro.sim.simulator import quick_run\n"
            "try:\n"
            "    quick_run('web_search', num_requests=2000, engine='vector')\n"
            "except RuntimeError as error:\n"
            "    print('RAISED', error)\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "RAISED" in proc.stdout
        assert "requires NumPy" in proc.stdout


@needs_numpy
class TestZipfFallbackParity:
    """The pure-Python CDF must match the NumPy one to pow's rounding."""

    @pytest.mark.parametrize("alpha", (0.0, 0.6, 0.99, 1.2))
    def test_cdf_matches_numpy(self, monkeypatch, alpha):
        from repro.workloads import synthetic

        numpy_cdf = synthetic._ZipfSampler._build_cdf(1000, alpha)
        monkeypatch.setattr(synthetic, "np", None)
        python_cdf = synthetic._ZipfSampler._build_cdf(1000, alpha)
        # NumPy's vectorised pow and libm's may round differently in the
        # last ulp; anything beyond that is a real divergence.
        assert [float(v) for v in numpy_cdf] == pytest.approx(
            python_cdf, rel=1e-13
        )
        assert python_cdf[-1] == 1.0 or python_cdf[-1] == pytest.approx(1.0)

    def test_sample_agrees(self, monkeypatch):
        from repro.workloads import synthetic

        synthetic._ZipfSampler._cache.clear()
        with_numpy = synthetic._ZipfSampler(257, 0.8)
        draws = [i / 97.0 % 1.0 for i in range(97)]
        numpy_samples = [with_numpy.sample(u) for u in draws]
        monkeypatch.setattr(synthetic, "np", None)
        synthetic._ZipfSampler._cache.clear()
        without = synthetic._ZipfSampler(257, 0.8)
        assert [without.sample(u) for u in draws] == numpy_samples
        synthetic._ZipfSampler._cache.clear()


class TestPerfHistory:
    def test_append_history_records(self, tmp_path):
        from repro.perf.bench import HISTORY_SCHEMA, append_history

        payload = {
            "protocol": {
                "workload": "web_search", "capacity_mb": 256,
                "num_requests": 1000, "seed": 0, "repeats": 1,
                "engine": "both",
            },
            "environment": {"commit": "abc123", "cpu": "TestCPU", "python": "3"},
            "designs": {
                "footprint": {
                    "engine": "vector",
                    "warm_requests_per_second": 500000.0,
                    "cold_requests_per_second": 250000.0,
                },
            },
            "engine_comparison": {
                "footprint": {
                    "interp_warm_requests_per_second": 150000.0,
                    "vector_warm_requests_per_second": 500000.0,
                    "vector_speedup": 3.33,
                },
            },
        }
        path = tmp_path / "history.jsonl"
        append_history(payload, str(path))
        append_history(payload, str(path))  # append-only: grows, never rewrites
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 4
        assert all(r["schema"] == HISTORY_SCHEMA for r in records)
        engines = {(r["engine"], r["design"]) for r in records}
        assert engines == {("vector", "footprint"), ("interp", "footprint")}
        vector = next(r for r in records if r["engine"] == "vector")
        assert vector["commit"] == "abc123"
        assert vector["cpu"] == "TestCPU"
        assert vector["warm_requests_per_second"] == 500000.0
