"""Unit tests for workload profiles and the synthetic trace engine."""

import pytest

from repro.mem.request import page_address
from repro.workloads.cloudsuite import WORKLOAD_NAMES, make_workload
from repro.workloads.profiles import (
    AccessFunctionSpec,
    WorkloadProfile,
    all_profiles,
    profile_for,
)
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import materialize, trace_statistics


class TestProfiles:
    def test_all_six_workloads_registered(self):
        assert set(WORKLOAD_NAMES) == set(all_profiles())
        assert len(WORKLOAD_NAMES) == 6

    def test_profile_for_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="web_search"):
            profile_for("nope")

    def test_function_weights_roughly_normalised(self):
        for profile in all_profiles().values():
            total = sum(f.weight for f in profile.functions)
            assert total == pytest.approx(1.0, abs=0.02)

    def test_scaled_shrinks_dataset(self):
        profile = profile_for("web_search")
        half = profile.scaled(0.5)
        assert half.dataset_bytes == profile.dataset_bytes // 2
        assert half.name == profile.name

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            profile_for("web_search").scaled(0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AccessFunctionSpec(kind="bogus", weight=1.0)
        with pytest.raises(ValueError):
            AccessFunctionSpec(kind="sparse", weight=1.0, min_blocks=5, max_blocks=2)
        with pytest.raises(ValueError):
            AccessFunctionSpec(kind="full", weight=0.0)
        with pytest.raises(ValueError):
            AccessFunctionSpec(kind="full", weight=1.0, zipf_alpha=-1)
        with pytest.raises(ValueError):
            AccessFunctionSpec(kind="full", weight=1.0, write_fraction=1.5)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", functions=(), dataset_bytes=1024)

    def test_sat_solver_has_drift(self):
        profile = profile_for("sat_solver")
        assert any(f.drift > 0 for f in profile.functions)

    def test_every_workload_has_singletons(self):
        for profile in all_profiles().values():
            assert any(f.kind == "singleton" for f in profile.functions)


class TestSyntheticWorkload:
    def test_deterministic_given_seed(self):
        a = materialize(make_workload("web_search", seed=7).requests(500))
        b = materialize(make_workload("web_search", seed=7).requests(500))
        assert a == b

    def test_different_seeds_differ(self):
        a = materialize(make_workload("web_search", seed=1).requests(500))
        b = materialize(make_workload("web_search", seed=2).requests(500))
        assert a != b

    def test_requests_have_valid_fields(self):
        profile = profile_for("data_serving")
        for request in make_workload("data_serving").requests(1000):
            assert request.address >= 0
            assert request.pc > 0
            assert 0 <= request.core_id < profile.num_cores
            assert request.instruction_count >= 1

    def test_requested_count_honoured(self):
        assert len(materialize(make_workload("mapreduce").requests(123))) == 123

    def test_zero_requests(self):
        assert materialize(make_workload("mapreduce").requests(0)) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            list(make_workload("mapreduce").requests(-1))

    def test_all_cores_used(self):
        cores = {r.core_id for r in make_workload("web_search").requests(2000)}
        assert len(cores) == 16

    def test_addresses_span_many_pages(self):
        pages = {
            page_address(r.address, 2048)
            for r in make_workload("web_search").requests(5000)
        }
        assert len(pages) > 50

    def test_page_size_shapes_footprints(self):
        workload = make_workload("web_search", page_size=1024)
        assert workload.blocks_per_page == 16
        for request in workload.requests(200):
            assert request.block_index_in_page(1024) < 16

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(profile_for("web_search"), page_size=1000)

    def test_dataset_scale(self):
        small = make_workload("web_search", dataset_scale=0.25)
        assert small.profile.dataset_bytes == profile_for("web_search").dataset_bytes // 4

    def test_pc_correlation(self):
        """The same page revisited is touched by the same PC (the property
        the footprint predictor exploits)."""
        pc_by_page = {}
        consistent = 0
        revisits = 0
        for request in make_workload("web_search").requests(30_000):
            page = page_address(request.address, 2048)
            if page in pc_by_page:
                revisits += 1
                if pc_by_page[page] == request.pc:
                    consistent += 1
            else:
                pc_by_page[page] = request.pc
        assert revisits > 0
        assert consistent / revisits > 0.95

    def test_visits_counter(self):
        workload = make_workload("web_search")
        materialize(workload.requests(1000))
        assert workload.visits_opened >= workload.profile.pool_size


class TestTraceHelpers:
    def test_materialize_limit(self):
        workload = make_workload("web_search")
        assert len(materialize(workload.requests(100), limit=10)) == 10

    def test_materialize_negative_limit(self):
        with pytest.raises(ValueError):
            materialize([], limit=-1)

    def test_statistics(self):
        trace = materialize(make_workload("data_serving", seed=3).requests(5000))
        stats = trace_statistics(trace)
        assert stats.num_requests == 5000
        assert 0.0 < stats.write_fraction < 0.6
        assert stats.unique_pages > 10
        assert stats.unique_blocks >= stats.unique_pages
        assert stats.unique_pcs > 4
        assert stats.total_instructions > 5000

    def test_statistics_empty(self):
        stats = trace_statistics([])
        assert stats.num_requests == 0
        assert stats.write_fraction == 0.0
        assert stats.accesses_per_kilo_instruction == 0.0

    def test_bandwidth_demand_in_paper_band(self):
        """Section 5.3: 0.6-1.6 GB/s per core of off-chip demand.

        Demand = 64B per access / (instructions x CPI) at 3GHz with IPC~1:
        accesses-per-kilo-instruction between ~3 and ~10.
        """
        for name in WORKLOAD_NAMES:
            trace = materialize(make_workload(name, seed=1).requests(5000))
            stats = trace_statistics(trace)
            assert 2.5 <= stats.accesses_per_kilo_instruction <= 10.0, name
