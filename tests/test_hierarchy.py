"""Unit tests for the L2 SRAM level in front of the DRAM cache."""

import pytest

from repro.caches.ideal_cache import IdealCache
from repro.caches.page_cache import PageBasedCache
from repro.mem.hierarchy import L2Cache
from tests.conftest import read, write


@pytest.fixture
def dram_cache(stacked, offchip):
    return PageBasedCache(
        stacked, offchip, capacity_bytes=16 * 2048, associativity=8, tag_latency=4
    )


@pytest.fixture
def l2(dram_cache):
    # Tiny L2: 8 blocks, 2 sets x 4 ways.
    return L2Cache(dram_cache, capacity_bytes=8 * 64, associativity=4, hit_latency=13)


class TestL2Basics:
    def test_first_access_misses_through(self, l2, dram_cache):
        result = l2.access(read(0x10000), 0)
        assert not result.hit
        assert result.latency > l2.hit_latency
        assert dram_cache.accesses == 1

    def test_second_access_hits_in_sram(self, l2, dram_cache):
        l2.access(read(0x10000), 0)
        result = l2.access(read(0x10000), 100)
        assert result.hit
        assert result.latency == 13
        assert dram_cache.accesses == 1  # filtered

    def test_l2_filters_short_term_reuse(self, l2, dram_cache):
        for _ in range(10):
            l2.access(read(0x10000), 0)
        assert l2.hit_ratio == pytest.approx(0.9)
        assert dram_cache.accesses == 1

    def test_hit_latency_matches_table3(self, dram_cache):
        l2 = L2Cache(dram_cache)
        assert l2.hit_latency == 13
        assert l2.capacity_bytes == 4 * 1024 * 1024

    def test_invalid_geometry(self, dram_cache):
        with pytest.raises(ValueError):
            L2Cache(dram_cache, capacity_bytes=100)


class TestL2Writeback:
    def test_dirty_eviction_writes_below(self, l2, dram_cache):
        l2.access(write(0), 0)
        # Fill set 0 (stride = 2 sets x 64B): 4 ways + 1 evicts block 0.
        for i in range(1, 5):
            l2.access(read(i * 128), i * 100)
        assert l2.stats.counter("dirty_writebacks").value == 1
        # The writeback reached the DRAM cache as an extra access.
        assert dram_cache.accesses == 6

    def test_clean_eviction_is_silent(self, l2, dram_cache):
        for i in range(5):
            l2.access(read(i * 128), i * 100)
        assert l2.stats.counter("dirty_writebacks").value == 0
        assert dram_cache.accesses == 5

    def test_write_hit_marks_dirty(self, l2):
        l2.access(read(0), 0)
        l2.access(write(0), 10)
        for i in range(1, 5):
            l2.access(read(i * 128), i * 100)
        assert l2.stats.counter("dirty_writebacks").value == 1


class TestL2Composition:
    def test_stacks_on_any_dram_cache(self, stacked, offchip):
        l2 = L2Cache(IdealCache(stacked, offchip), capacity_bytes=8 * 64, associativity=4)
        result = l2.access(read(0x5000), 0)
        assert result.hit  # ideal below: even the L2 miss "hits" overall
        assert l2.access(read(0x5000), 100).latency == l2.hit_latency

    def test_reset_stats(self, l2):
        l2.access(read(0), 0)
        l2.reset_stats()
        assert l2.accesses == 0
        # Contents survive: next access hits.
        assert l2.access(read(0), 100).hit

    def test_hit_ratio_empty(self, l2):
        assert l2.hit_ratio == 0.0
