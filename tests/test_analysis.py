"""Unit tests for the analysis modules (Figs. 4, 8, 12 and reporting)."""

from collections import Counter

import pytest

from repro.analysis.coverage import (
    access_counts_per_page,
    coverage_curve,
    ideal_cache_size_for_coverage,
)
from repro.analysis.page_density import (
    DENSITY_BUCKETS,
    PageDensityTracker,
    page_density_profile,
)
from repro.analysis.predictor_accuracy import AccuracyBreakdown, predictor_accuracy
from repro.analysis.report import format_table, percent, stacked_bar_rows
from repro.mem.request import MemoryRequest
from repro.workloads.cloudsuite import make_workload
from repro.workloads.trace import materialize


def request(addr):
    return MemoryRequest(address=addr)


class TestPageDensity:
    def test_buckets_cover_1_to_32(self):
        covered = set()
        for low, high, _ in DENSITY_BUCKETS:
            covered.update(range(low, high + 1))
        assert covered == set(range(1, 33))

    def test_single_block_page(self):
        tracker = PageDensityTracker(capacity_bytes=16 * 2048)
        tracker.observe(request(0))
        tracker.finish()
        assert tracker.histogram.count(1) == 1

    def test_density_counts_unique_blocks(self):
        tracker = PageDensityTracker(capacity_bytes=16 * 2048)
        for offset in (0, 64, 64, 128):
            tracker.observe(request(offset))
        tracker.finish()
        assert tracker.histogram.count(3) == 1

    def test_eviction_flushes_density(self):
        # 1 set x 2 ways: third page evicts the first.
        tracker = PageDensityTracker(capacity_bytes=2 * 2048, associativity=2)
        tracker.observe(request(0))
        tracker.observe(request(64))
        tracker.observe(request(2048))
        tracker.observe(request(2 * 2048))
        assert tracker.histogram.count(2) == 1  # page 0 evicted with 2 blocks

    def test_bucket_fractions_sum_to_one(self):
        tracker = PageDensityTracker(capacity_bytes=16 * 2048)
        for i in range(100):
            tracker.observe(request(i * 2048 + (i % 4) * 64))
        tracker.finish()
        assert sum(tracker.bucket_fractions().values()) == pytest.approx(1.0)

    def test_profile_function(self):
        trace = materialize(make_workload("web_search", seed=1).requests(5000))
        profile = page_density_profile(trace, capacity_bytes=64 * 2048)
        assert set(profile) == {label for _, _, label in DENSITY_BUCKETS}
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PageDensityTracker(capacity_bytes=1000)


class TestCoverage:
    def test_access_counts(self):
        counts = access_counts_per_page([request(0), request(64), request(4096)])
        assert counts[0] == 2
        assert counts[4096] == 1

    def test_curve_monotonic(self):
        counts = Counter({i * 4096: 100 - i for i in range(100)})
        curve = coverage_curve(counts)
        sizes = [size for _, size in curve]
        assert sizes == sorted(sizes)

    def test_skewed_needs_less_cache(self):
        skewed = Counter({0: 1000, 4096: 1, 8192: 1})
        uniform = Counter({0: 334, 4096: 334, 8192: 334})
        ((_, skewed_size),) = coverage_curve(skewed, points=(0.8,))
        ((_, uniform_size),) = coverage_curve(uniform, points=(0.8,))
        assert skewed_size < uniform_size

    def test_full_coverage_needs_all_pages(self):
        counts = Counter({i * 4096: 1 for i in range(10)})
        ((_, size),) = coverage_curve(counts, points=(1.0,))
        assert size == 10 * 4096

    def test_invalid_points(self):
        with pytest.raises(ValueError):
            coverage_curve(Counter({0: 1}), points=(0.0,))
        with pytest.raises(ValueError):
            coverage_curve(Counter(), points=(0.5,))

    def test_ideal_cache_size_for_coverage(self):
        trace = materialize(make_workload("web_search", seed=1).requests(5000))
        size = ideal_cache_size_for_coverage(trace, coverage=0.5)
        assert size > 0

    def test_scale_out_needs_large_fraction(self):
        """The Fig. 12 observation: no compact hot set — covering 80% of
        accesses needs a cache comparable to the touched footprint."""
        trace = materialize(make_workload("data_serving", seed=1).requests(20_000))
        counts = access_counts_per_page(trace)
        total_footprint = len(counts) * 4096
        size80 = ideal_cache_size_for_coverage(trace, coverage=0.8)
        assert size80 > 0.2 * total_footprint


class TestPredictorAccuracy:
    def test_breakdown(self):
        breakdown = predictor_accuracy(
            "web_search", capacity_mb=64, num_requests=60_000
        )
        assert isinstance(breakdown, AccuracyBreakdown)
        assert breakdown.coverage + breakdown.underprediction == pytest.approx(1.0)
        assert breakdown.overprediction >= 0
        row = breakdown.as_row()
        assert set(row) == {"Covered", "Underpredictions", "Overpredictions"}


class TestReport:
    def test_percent(self):
        assert percent(0.57) == "57.0%"
        assert percent(0.1234, digits=2) == "12.34%"

    def test_format_table(self):
        text = format_table(("a", "bb"), [(1, 2), (33, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "33" in lines[3]

    def test_format_table_title(self):
        text = format_table(("x",), [(1,)], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_stacked_bar_rows(self):
        rows = stacked_bar_rows(
            {"page": {"64MB": 0.18}, "block": {"64MB": 0.62}}, columns=["64MB"]
        )
        assert rows[0] == ["page", "18.0%"]
        assert rows[1] == ["block", "62.0%"]
