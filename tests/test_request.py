"""Unit tests for memory request types and address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.request import (
    BLOCK_SIZE,
    AccessType,
    MemoryRequest,
    block_address,
    page_address,
    page_offset,
)


class TestAccessType:
    def test_read_is_not_write(self):
        assert not AccessType.READ.is_write

    def test_write_is_write(self):
        assert AccessType.WRITE.is_write


class TestMemoryRequest:
    def test_default_fields(self):
        request = MemoryRequest(address=0x1000)
        assert request.pc == 0
        assert request.access_type is AccessType.READ
        assert request.core_id == 0
        assert request.instruction_count == 1

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=-1)

    def test_negative_instruction_count_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=0, instruction_count=-1)

    def test_is_write_mirrors_access_type(self):
        assert MemoryRequest(address=0, access_type=AccessType.WRITE).is_write
        assert not MemoryRequest(address=0).is_write

    def test_block_address_rounds_down(self):
        request = MemoryRequest(address=0x1234)
        assert request.block_address() == 0x1200

    def test_page_address_rounds_down(self):
        request = MemoryRequest(address=0x1234)
        assert request.page_address(2048) == 0x1000

    def test_block_index_in_page(self):
        request = MemoryRequest(address=2048 + 3 * 64 + 17)
        assert request.block_index_in_page(2048) == 3

    def test_requests_are_frozen(self):
        request = MemoryRequest(address=0)
        with pytest.raises(AttributeError):
            request.address = 5


class TestAddressHelpers:
    def test_block_address_identity_for_aligned(self):
        assert block_address(0x4000) == 0x4000

    def test_block_address_custom_size(self):
        assert block_address(0x1FF, 128) == 0x180

    def test_page_address_zero(self):
        assert page_address(0, 2048) == 0

    def test_page_offset_first_block(self):
        assert page_offset(2048, 2048) == 0

    def test_page_offset_last_block(self):
        assert page_offset(2048 + 2047, 2048) == 31

    @pytest.mark.parametrize("bad", [0, 3, 100, -2])
    def test_non_power_of_two_page_rejected(self, bad):
        with pytest.raises(ValueError):
            page_address(0, bad)

    def test_block_larger_than_page_rejected(self):
        with pytest.raises(ValueError):
            page_offset(0, 64, 128)

    @given(st.integers(min_value=0, max_value=2**48))
    def test_block_address_is_aligned_and_below(self, address):
        base = block_address(address)
        assert base % BLOCK_SIZE == 0
        assert base <= address < base + BLOCK_SIZE

    @given(
        st.integers(min_value=0, max_value=2**48),
        st.sampled_from([1024, 2048, 4096]),
    )
    def test_page_decomposition_roundtrip(self, address, page_size):
        base = page_address(address, page_size)
        offset = page_offset(address, page_size)
        assert base % page_size == 0
        assert base + offset * BLOCK_SIZE <= address
        assert address < base + (offset + 1) * BLOCK_SIZE

    @given(st.integers(min_value=0, max_value=2**40))
    def test_offset_in_range(self, address):
        assert 0 <= page_offset(address, 2048) < 32
