"""Unit tests for DDR3 timing parameters."""

import dataclasses

import pytest

from repro.dram.timing import DramTiming, OFF_CHIP_DDR3_1600, STACKED_DDR3_3200


class TestPresets:
    def test_paper_timing_values(self):
        # Table 3: tCAS-tRCD-tRP-tRAS = 11-11-11-28, tRC-tWR-tWTR-tRTP =
        # 39-12-6-6, tRRD-tFAW = 5-24.
        for timing in (OFF_CHIP_DDR3_1600, STACKED_DDR3_3200):
            assert (timing.t_cas, timing.t_rcd, timing.t_rp, timing.t_ras) == (11, 11, 11, 28)
            assert (timing.t_rc, timing.t_wr, timing.t_wtr, timing.t_rtp) == (39, 12, 6, 6)
            assert (timing.t_rrd, timing.t_faw) == (5, 24)

    def test_stacked_has_double_bus_frequency(self):
        assert STACKED_DDR3_3200.bus_mhz == 2 * OFF_CHIP_DDR3_1600.bus_mhz

    def test_stacked_has_128bit_bus(self):
        assert STACKED_DDR3_3200.bus_width_bits == 128

    def test_row_buffer_is_2kb(self):
        assert OFF_CHIP_DDR3_1600.row_buffer_bytes == 2048


class TestValidation:
    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(OFF_CHIP_DDR3_1600, bus_mhz=0)

    def test_non_power_of_two_row_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(OFF_CHIP_DDR3_1600, row_buffer_bytes=3000)

    def test_odd_bus_width_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(OFF_CHIP_DDR3_1600, bus_width_bits=63)


class TestBurstMath:
    def test_bytes_per_burst(self):
        # 64-bit bus, BL8: 64 bytes.
        assert OFF_CHIP_DDR3_1600.bytes_per_burst == 64
        assert STACKED_DDR3_3200.bytes_per_burst == 128

    def test_single_block_burst_cycles(self):
        # 64B on a 64-bit bus: 8 beats = 4 bus cycles.
        assert OFF_CHIP_DDR3_1600.burst_cycles(64) == 4

    def test_minimum_burst_enforced(self):
        # Even 1 byte moves a full BL8 burst.
        assert OFF_CHIP_DDR3_1600.burst_cycles(1) == 4

    def test_page_burst_cycles(self):
        # 2KB page over a 64-bit bus: 256 beats = 128 bus cycles.
        assert OFF_CHIP_DDR3_1600.burst_cycles(2048) == 128

    def test_stacked_page_burst_is_quarter(self):
        # 128-bit bus halves beats; same cycle count per beat pair.
        assert STACKED_DDR3_3200.burst_cycles(2048) == 64

    def test_burst_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            OFF_CHIP_DDR3_1600.burst_cycles(0)


class TestLatencyClasses:
    def test_ordering(self):
        timing = OFF_CHIP_DDR3_1600
        assert timing.row_hit_bus_cycles < timing.row_closed_bus_cycles
        assert timing.row_closed_bus_cycles < timing.row_conflict_bus_cycles

    def test_values(self):
        timing = OFF_CHIP_DDR3_1600
        assert timing.row_hit_bus_cycles == 11
        assert timing.row_closed_bus_cycles == 22
        assert timing.row_conflict_bus_cycles == 33


class TestCpuConversion:
    def test_offchip_ratio(self):
        # 800MHz bus at 3GHz CPU: x3.75, rounded up.
        assert OFF_CHIP_DDR3_1600.to_cpu_cycles(4) == 15

    def test_stacked_ratio(self):
        # 1600MHz bus at 3GHz CPU: x1.875.
        assert STACKED_DDR3_3200.to_cpu_cycles(8) == 15

    def test_zero_cycles(self):
        assert OFF_CHIP_DDR3_1600.to_cpu_cycles(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OFF_CHIP_DDR3_1600.to_cpu_cycles(-1)


class TestHalvedLatency:
    def test_half_latency_variant(self):
        half = STACKED_DDR3_3200.with_halved_latency()
        assert half.t_cas == 5
        assert half.t_rcd == 5
        assert half.t_rc == 19
        # Bandwidth parameters unchanged.
        assert half.bus_mhz == STACKED_DDR3_3200.bus_mhz
        assert half.bus_width_bits == STACKED_DDR3_3200.bus_width_bits

    def test_half_latency_never_zero(self):
        tiny = dataclasses.replace(OFF_CHIP_DDR3_1600, t_rrd=1)
        assert tiny.with_halved_latency().t_rrd == 1
