"""Tests for the design registry: plugin API, traits, refactor parity."""

import pytest

from repro.caches.base import BaselineMemory, DramCache
from repro.caches.registry import (
    DesignSpec,
    design_names,
    get_design,
    is_builtin,
    register_design,
    unregister_design,
)
from repro.core.overheads import DesignOverheads, overheads_for
from repro.exp import ExperimentSpec, SweepRunner
from repro.sim import config as sim_config
from repro.sim.config import CacheConfig, SimulationConfig
from repro.sim.system import build_system
from repro.sim.simulator import quick_run

BUILTINS = ("baseline", "block", "page", "footprint", "subblock", "chop", "ideal")


class EchoCache(BaselineMemory):
    """Minimal registrable design: a renamed no-cache baseline."""

    name = "echo"


def _register_echo(**traits):
    traits.setdefault("needs_stacked", False)

    @register_design("echo", **traits)
    def build_echo(config, stacked, offchip):
        return EchoCache(stacked, offchip)

    return build_echo


class TestRegistryApi:
    def test_builtins_registered_in_order(self):
        assert design_names() == BUILTINS
        assert all(is_builtin(name) for name in BUILTINS)

    def test_get_design_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            get_design("magic")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_design("footprint")
            def build(config, stacked, offchip):  # pragma: no cover
                raise AssertionError

    def test_custom_duplicate_rejected_too(self):
        _register_echo()
        try:
            with pytest.raises(ValueError, match="already registered"):
                _register_echo()
        finally:
            unregister_design("echo")

    def test_builtin_unregister_refused(self):
        with pytest.raises(ValueError, match="built-in"):
            unregister_design("footprint")

    def test_unknown_unregister_refused(self):
        with pytest.raises(ValueError, match="not registered"):
            unregister_design("echo")

    def test_bad_interleaving_rejected(self):
        with pytest.raises(ValueError, match="stacked_interleaving"):
            DesignSpec(name="bad", builder=lambda *a: None, stacked_interleaving="diag")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            DesignSpec(name="no spaces", builder=lambda *a: None)

    def test_interleaving_follows_page_organisation(self):
        # The Section 5.2 coupling the old _PAGE_ORGANISED list enforced:
        # page-organised designs default to page-granular interleaving.
        paged = DesignSpec(name="p", builder=lambda *a: None, page_organised=True)
        flat = DesignSpec(name="f", builder=lambda *a: None)
        assert paged.stacked_interleaving == "page"
        assert flat.stacked_interleaving == "block"
        assert get_design("footprint").stacked_interleaving == "page"
        assert get_design("block").stacked_interleaving == "row"

    def test_traits_are_json_ready(self):
        import json

        traits = get_design("block").traits()
        assert json.loads(json.dumps(traits)) == traits
        assert traits["stacked_policy"] == "CLOSE_PAGE"


class TestDesignsDerivedFromRegistry:
    def test_designs_is_live_view(self):
        assert sim_config.DESIGNS == design_names()
        _register_echo()
        try:
            assert "echo" in sim_config.DESIGNS
            assert "echo" in design_names()
        finally:
            unregister_design("echo")
        assert "echo" not in sim_config.DESIGNS

    def test_custom_design_validates_in_cache_config(self):
        with pytest.raises(ValueError):
            CacheConfig(design="echo")
        _register_echo()
        try:
            assert CacheConfig(design="echo").design == "echo"
        finally:
            unregister_design("echo")


class TestCustomDesignEndToEnd:
    def test_builds_and_sweeps(self):
        _register_echo()
        try:
            config = SimulationConfig.scaled("web_search", "echo", 64, num_requests=3000)
            system = build_system(config)
            assert isinstance(system.cache, EchoCache)
            assert system.stacked is None  # needs_stacked=False

            spec = ExperimentSpec(
                workloads="web_search", designs=("echo", "baseline"),
                capacities_mb=64, num_requests=3000,
            )
            results = SweepRunner(store=None).run(spec)
            echo = results.get(design="echo").to_dict()
            baseline = results.get(design="baseline").to_dict()
            # A renamed baseline must behave exactly like the baseline
            # (identity fields aside: echo is not marked
            # capacity-independent, so it keeps its nominal capacity).
            for key in ("design", "capacity_bytes"):
                echo.pop(key), baseline.pop(key)
            assert echo == baseline
        finally:
            unregister_design("echo")

    def test_custom_overhead_model_consulted(self):
        def model(capacity_bytes, page_size, associativity):
            return DesignOverheads("echo", capacity_bytes, 123, 7)

        _register_echo(overheads=model)
        try:
            overheads = overheads_for("echo", 64 * 1024 * 1024)
            assert overheads.storage_bytes == 123
            assert overheads.latency_cycles == 7
            assert CacheConfig(design="echo").resolved_tag_latency() == 7
        finally:
            unregister_design("echo")

    def test_default_overheads_are_zero(self):
        _register_echo()
        try:
            overheads = overheads_for("echo", 64 * 1024 * 1024)
            assert overheads.storage_bytes == 0
            assert overheads.latency_cycles == 0
        finally:
            unregister_design("echo")


class TestBuilderDispatch:
    @pytest.mark.parametrize("design", BUILTINS)
    def test_builders_produce_dram_caches(self, design):
        config = SimulationConfig.scaled("web_search", design, 64, num_requests=3000)
        system = build_system(config)
        assert isinstance(system.cache, DramCache)
        assert system.frontend is system.cache

    def test_stacked_required_designs_reject_none(self):
        from repro.sim.system import build_cache

        config = SimulationConfig.scaled("web_search", "page", 64, num_requests=3000)
        dummy_offchip = build_system(config).offchip
        with pytest.raises(ValueError, match="stacked controller"):
            build_cache(config.cache, None, dummy_offchip)


class TestRefactorParity:
    """Registry-driven construction reproduces the pre-registry systems.

    Golden numbers captured from the if-chain implementation (PR 1 tree)
    at (web_search, 64MB nominal, scale 256, 4000 requests, seed 0).
    A mismatch means construction semantics changed — if intentional,
    bump ``repro.exp.spec.ENGINE_VERSION`` and re-capture.
    """

    GOLDEN = {
        "baseline": (1.0, 4.775206758296223, 128000),
        "block": (0.782, 6.6309399075500775, 100096),
        "page": (0.048, 9.10519634394042, 201984),
        "footprint": (0.774, 5.827273055535495, 113536),
        "subblock": (0.798, 5.610990386454114, 107520),
        "chop": (0.105, 9.204123534947387, 130752),
        "ideal": (0.0, 9.555361477885015, 0),
    }

    @pytest.mark.parametrize("design", sorted(GOLDEN))
    def test_same_stats_as_pre_registry_build(self, design):
        miss_ratio, aggregate_ipc, offchip_bytes = self.GOLDEN[design]
        result = quick_run(
            "web_search", design=design, capacity_mb=64, scale=256,
            num_requests=4000, seed=0,
        )
        assert result.miss_ratio == pytest.approx(miss_ratio, abs=1e-12)
        assert result.aggregate_ipc == pytest.approx(aggregate_ipc, rel=1e-12)
        assert result.offchip_bytes == offchip_bytes
