"""Observability across the serve layer and the worker fleet.

The integration half of the obs story (``test_obs.py`` covers the
primitives): the two metrics endpoints on a live socket — including
under concurrent scrapes — fleet telemetry (a traced distributed run
covers every delivered point, with no orphaned parent ids, and a
killed-worker run is reconstructable from the trace alone), and the
hard constraint that tracing cannot change a single stored byte.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.request

import pytest

from repro.exp import ExperimentSpec, ResultStore, SweepRunner
from repro.exp.backends.distributed import COORDINATOR_PREFIX
from repro.obs.metrics import reset_registry
from repro.obs.spans import TRACE_ENV, configure_tracer, load_span_schema, validate_span
from repro.obs.summarize import summarize_trace
from repro.serve.faults import FaultyWorker, LocalTransport
from repro.serve.worker import WorkerKilled, WorkerLoop


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        workloads=("web_search",), designs=("page",),
        capacities_mb=64, num_requests=2000,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def store_lines(directory) -> list:
    with open(ResultStore(str(directory)).path) as handle:
        return sorted(line for line in handle.read().splitlines() if line)


@pytest.fixture()
def traced(tmp_path):
    """An enabled process-wide tracer on a temp file; restored after."""
    reset_registry()
    saved = os.environ.pop(TRACE_ENV, None)
    path = str(tmp_path / "trace.ndjson")
    configure_tracer(path, process="test")
    yield path
    configure_tracer(None)
    reset_registry()
    if saved is not None:
        os.environ[TRACE_ENV] = saved


def read_spans(path):
    schema = load_span_schema()
    records = [json.loads(line) for line in open(path)]
    for record in records:
        assert validate_span(record, schema) == [], record
    return records


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def fetch(base, path):
    with urllib.request.urlopen(f"{base}{path}", timeout=30) as response:
        return response.status, response.headers.get("Content-Type"), (
            response.read().decode()
        )


class TestMetricsEndpoints:
    def test_json_and_prometheus_routes(self, http_stack):
        base, _service = http_stack()
        status, ctype, body = fetch(base, "/api/v1/metrics")
        assert status == 200
        assert ctype.startswith("application/json")
        payload = json.loads(body)
        assert payload["service"] == "repro-serve"
        assert "repro_serve_queue_depth" in payload["metrics"]
        assert "repro_trace_cache_entries" in payload["metrics"]

        status, ctype, body = fetch(base, "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        assert "# TYPE repro_serve_queue_depth gauge" in body
        assert body.endswith("\n")

    def test_prometheus_format_is_well_formed(self, http_stack):
        base, _service = http_stack()
        _, _, body = fetch(base, "/metrics")
        for line in body.splitlines():
            assert line.startswith("#") or " " in line, line
            if not line.startswith("#"):
                value = line.rsplit(" ", 1)[1]
                float(value)  # every sample line ends in a number

    def test_concurrent_scrapes(self, http_stack):
        base, _service = http_stack()
        errors = []

        def scrape(path, parse):
            try:
                for _ in range(10):
                    status, _, body = fetch(base, path)
                    assert status == 200
                    parse(body)
            except Exception as error:  # noqa: BLE001 - collected for the assert
                errors.append(error)

        threads = [
            threading.Thread(target=scrape, args=("/metrics", str)),
            threading.Thread(target=scrape, args=("/metrics", str)),
            threading.Thread(
                target=scrape, args=("/api/v1/metrics", json.loads)
            ),
            threading.Thread(
                target=scrape, args=("/api/v1/metrics", json.loads)
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_metrics_reflect_job_activity(self, http_stack):
        base, _service = http_stack()
        spec = tiny_spec()
        payload = json.dumps(spec.to_dict()).encode()
        request = urllib.request.Request(
            f"{base}/api/v1/jobs", data=payload,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            job = json.loads(response.read())
        deadline = 60
        import time as _time
        while deadline > 0:
            _, _, body = fetch(base, f"/api/v1/jobs/{job['id']}")
            if json.loads(body)["state"] in ("done", "failed"):
                break
            _time.sleep(0.1)
            deadline -= 1
        _, _, body = fetch(base, "/api/v1/metrics")
        metrics = json.loads(body)["metrics"]
        samples = metrics["repro_serve_jobs_total"]["samples"]
        done = [
            s["value"] for s in samples
            if s["labels"].get("state") == "done"
        ]
        assert sum(done) >= 1


class TestFleetTelemetry:
    def test_traced_distributed_run_covers_every_point(
        self, tmp_path, serve_stack, traced
    ):
        service = serve_stack(store_dir=str(tmp_path / "coord"))
        transport = LocalTransport(service)
        points = tuple(tiny_spec(seeds=(0, 1, 2)).points())
        run_id = transport.call(
            "POST", f"{COORDINATOR_PREFIX}/runs",
            {"points": [p.to_dict() for p in points], "shards": 3},
        )["id"]
        worker = WorkerLoop(transport, worker_id="w1")
        while worker.step():
            pass
        snapshot = transport.call("GET", f"{COORDINATOR_PREFIX}/runs/{run_id}")
        assert snapshot["state"] == "done"

        records = read_spans(traced)
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)

        # >= 1 span per delivered point, on both sides of the protocol.
        delivered_keys = {
            r["attrs"]["key"] for r in by_name["worker.deliver"]
        }
        accepted_keys = {
            r["attrs"]["key"] for r in by_name["coordinator.deliver"]
        }
        assert delivered_keys == {p.key() for p in points}
        assert accepted_keys == delivered_keys
        assert len(by_name["worker.shard"]) == 3
        assert len(by_name["coordinator.lease"]) == 3
        assert len(by_name["coordinator.complete"]) == 3
        assert len(by_name["coordinator.done"]) == 1

        # No orphaned parent ids: every parent resolves within the file.
        ids = {record["span"] for record in records}
        for record in records:
            assert record["parent"] is None or record["parent"] in ids

    def test_killed_worker_run_reconstructs_from_telemetry(
        self, tmp_path, serve_stack, traced
    ):
        clock = FakeClock()
        service = serve_stack(
            store_dir=str(tmp_path / "coord"), clock=clock, lease_seconds=60
        )
        transport = LocalTransport(service)
        points = tuple(tiny_spec(seeds=(0, 1, 2)).points())
        transport.call(
            "POST", f"{COORDINATOR_PREFIX}/runs",
            {"points": [p.to_dict() for p in points], "shards": 1},
        )
        crasher = FaultyWorker(transport, worker_id="crasher", kill_after=2)
        with pytest.raises(WorkerKilled):
            crasher.step()
        clock.advance(61)
        survivor = WorkerLoop(transport, worker_id="survivor")
        while survivor.step():
            pass

        summary = summarize_trace(traced)
        assert summary["invalid"] == 0
        assert summary["orphans"] == 0
        leases = summary["leases"]
        assert leases["granted"] == 2
        assert leases["expired"] == 1
        assert leases["reassigned"] == 1
        assert leases["duplicates"] == 2  # crasher's deliveries, redone
        assert leases["conflicts"] == 0
        by_worker = {row["worker"]: row["points"] for row in summary["workers"]}
        assert by_worker == {"crasher": 2, "survivor": 3}


class TestTracingByteParity:
    def test_traced_sweep_store_is_byte_identical(self, tmp_path):
        spec = tiny_spec(seeds=(0, 1))
        reset_registry()
        saved = os.environ.pop(TRACE_ENV, None)
        try:
            configure_tracer(None)
            SweepRunner(store=ResultStore(str(tmp_path / "plain"))).run(spec)
            configure_tracer(str(tmp_path / "t.ndjson"), process="parity")
            SweepRunner(store=ResultStore(str(tmp_path / "traced"))).run(spec)
        finally:
            configure_tracer(None)
            reset_registry()
            if saved is not None:
                os.environ[TRACE_ENV] = saved
        assert store_lines(tmp_path / "plain") == store_lines(tmp_path / "traced")
        assert read_spans(str(tmp_path / "t.ndjson"))  # trace was written
