"""Unit tests for the MissMap presence filter."""

import pytest

from repro.caches.missmap import MissMap


def small_missmap(entries=48, assoc=24):
    return MissMap(num_entries=entries, associativity=assoc)


class TestBasics:
    def test_initially_absent(self):
        assert not small_missmap().is_present(0)

    def test_mark_present(self):
        missmap = small_missmap()
        missmap.mark_present(64)
        assert missmap.is_present(64)
        assert not missmap.is_present(128)

    def test_blocks_share_segment_entry(self):
        missmap = small_missmap()
        missmap.mark_present(0)
        missmap.mark_present(64)
        assert missmap.tracked_segments == 1

    def test_different_segments_different_entries(self):
        missmap = small_missmap()
        missmap.mark_present(0)
        missmap.mark_present(4096)
        assert missmap.tracked_segments == 2

    def test_mark_absent(self):
        missmap = small_missmap()
        missmap.mark_present(64)
        missmap.mark_absent(64)
        assert not missmap.is_present(64)

    def test_mark_absent_untracked_is_noop(self):
        small_missmap().mark_absent(64)

    def test_entry_freed_when_empty(self):
        missmap = small_missmap()
        missmap.mark_present(0)
        missmap.mark_absent(0)
        assert missmap.tracked_segments == 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MissMap(num_entries=10, associativity=24)
        with pytest.raises(ValueError):
            MissMap(num_entries=24, associativity=24, segment_bytes=100)


class TestForcedEvictions:
    def test_capacity_eviction_returns_lost_blocks(self):
        # 2 sets x 1 way: segments alternate sets by address.
        missmap = MissMap(num_entries=2, associativity=1)
        missmap.mark_present(0)
        missmap.mark_present(64)
        # Same set as segment 0 (stride 2 segments), forces eviction.
        lost = missmap.mark_present(2 * 4096)
        assert sorted(lost) == [0, 64]
        assert missmap.forced_eviction_count == 1

    def test_lost_blocks_reported_absent(self):
        missmap = MissMap(num_entries=2, associativity=1)
        missmap.mark_present(0)
        missmap.mark_present(2 * 4096)
        assert not missmap.is_present(0)

    def test_no_eviction_when_room(self):
        missmap = small_missmap()
        assert missmap.mark_present(0) == []
        assert missmap.forced_eviction_count == 0


class TestStorage:
    def test_paper_missmap_storage_close_to_2mb(self):
        # 192K entries: the paper reports 1.95MB.
        missmap = MissMap(num_entries=192 * 1024, associativity=24)
        assert missmap.storage_bytes() == pytest.approx(1.95 * 1024 * 1024, rel=0.15)

    def test_512mb_missmap_storage(self):
        missmap = MissMap(num_entries=288 * 1024, associativity=36)
        assert missmap.storage_bytes() == pytest.approx(2.92 * 1024 * 1024, rel=0.15)
