"""Unit tests for the trace-driven simulator."""

import pytest

from repro.mem.request import AccessType, MemoryRequest
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SimulationResult, Simulator, quick_run


def small_config(design="footprint", **kwargs):
    return SimulationConfig.scaled(
        "web_search", design, 256, scale=256, num_requests=8_000, **kwargs
    )


class TestSimulatorRun:
    def test_returns_result(self):
        result = Simulator(small_config()).run()
        assert isinstance(result, SimulationResult)
        assert result.design == "footprint"
        assert result.workload == "web_search"

    def test_measured_requests_exclude_warmup(self):
        result = Simulator(small_config()).run()
        assert result.requests == 4_000

    def test_miss_ratio_bounds(self):
        result = Simulator(small_config()).run()
        assert 0.0 <= result.miss_ratio <= 1.0
        assert result.hit_ratio == pytest.approx(1.0 - result.miss_ratio)

    def test_ipc_positive(self):
        result = Simulator(small_config()).run()
        assert result.aggregate_ipc > 0

    def test_explicit_trace(self):
        trace = [
            MemoryRequest(address=i * 64, pc=0x400, core_id=i % 16)
            for i in range(1000)
        ]
        config = small_config()
        config = SimulationConfig(
            workload=config.workload, cache=config.cache,
            num_requests=1000, warmup_fraction=0.5,
        )
        result = Simulator(config).run(trace=trace)
        assert result.requests == 500

    def test_short_trace_degenerate(self):
        config = small_config()
        trace = [MemoryRequest(address=0)] * 10
        result = Simulator(config).run(trace=trace)
        assert result.requests == 10

    def test_deterministic(self):
        a = Simulator(small_config(seed=5)).run()
        b = Simulator(small_config(seed=5)).run()
        assert a.miss_ratio == b.miss_ratio
        assert a.aggregate_ipc == b.aggregate_ipc
        assert a.offchip_bytes == b.offchip_bytes


class TestResultProperties:
    def test_baseline_traffic_normalised_to_one(self):
        result = Simulator(small_config(design="baseline")).run()
        assert result.offchip_traffic_normalized == pytest.approx(1.0, rel=0.01)

    def test_ideal_has_no_offchip_traffic(self):
        result = Simulator(small_config(design="ideal")).run()
        assert result.offchip_bytes == 0
        assert result.miss_ratio == 0.0

    def test_predictor_stats_only_for_footprint(self):
        footprint = Simulator(small_config()).run()
        page = Simulator(small_config(design="page")).run()
        assert footprint.predictor_coverage is not None
        assert page.predictor_coverage is None

    def test_energy_components_non_negative(self):
        result = Simulator(small_config(design="page")).run()
        assert result.offchip_activate_nj >= 0
        assert result.offchip_read_write_nj >= 0
        assert result.stacked_activate_nj >= 0
        assert result.offchip_energy_per_instruction() > 0

    def test_improvement_over(self):
        baseline = Simulator(small_config(design="baseline")).run()
        ideal = Simulator(small_config(design="ideal")).run()
        assert ideal.improvement_over(baseline) > 0


class TestQuickRun:
    def test_quick_run_smoke(self):
        result = quick_run("mapreduce", design="page", capacity_mb=128, num_requests=6000)
        assert result.design == "page"
        assert result.capacity_bytes == 128 * 1024 * 1024 // 256

    def test_quick_run_cache_kwargs(self):
        result = quick_run(
            "web_search", design="footprint", capacity_mb=128,
            num_requests=6000, fht_entries=512,
        )
        assert 0.0 <= result.miss_ratio <= 1.0
