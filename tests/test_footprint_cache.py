"""Unit tests for the Footprint Cache itself."""

import pytest

from repro.core.footprint_cache import FootprintCache
from repro.core.footprint_predictor import FootprintHistoryTable
from repro.core.singleton_table import SingletonTable
from repro.mem.request import AccessType, MemoryRequest
from tests.conftest import read, write


def make_cache(stacked, offchip, singleton=True, pages=16, associativity=8):
    fht = FootprintHistoryTable(num_entries=256, associativity=8, blocks_per_page=32)
    return FootprintCache(
        stacked,
        offchip,
        capacity_bytes=pages * 2048,
        associativity=associativity,
        tag_latency=9,
        fht=fht,
        singleton_table=SingletonTable(num_entries=16, associativity=4) if singleton else None,
        singleton_optimization=singleton,
    )


@pytest.fixture
def cache(stacked, offchip):
    return make_cache(stacked, offchip)


def run_visit(cache, page, offsets, pc, start=0, step=100):
    """Replay one page visit: sequential accesses to the given offsets."""
    results = []
    for i, offset in enumerate(offsets):
        request = read(page + offset * 64, pc=pc)
        results.append(cache.access(request, start + i * step))
    return results


def evict_page(cache, victim_set_page, start=10_000):
    """Allocate enough conflicting multi-block pages to evict residents."""
    stride = cache.tags.num_sets * 2048
    base = victim_set_page + 64 * stride
    for i in range(cache.tags.associativity + 1):
        # Use a multi-block footprint so the singleton filter never bypasses.
        page = base + i * stride
        run_visit(cache, page, [0, 1], pc=0xDEAD00 + 8 * i, start=start + i * 1000)


class TestColdMiss:
    def test_cold_miss_fetches_demand_block_only(self, cache, offchip):
        result = cache.access(read(0x10000, pc=0x400), 0)
        assert not result.hit
        assert result.fill_blocks == 1
        assert offchip.bytes_read == 64

    def test_cold_miss_allocates_fht_entry(self, cache):
        cache.access(read(0x10000, pc=0x400), 0)
        assert cache.fht.predict(0x400, 0) is not None


class TestLearning:
    def test_footprint_learned_after_eviction(self, cache, offchip):
        # First visit: blocks 0, 1, 2 demanded one by one (underpredictions).
        run_visit(cache, 0x10000, [0, 1, 2], pc=0x400)
        # Evict the page so the FHT learns the footprint {0, 1, 2}.
        evict_page(cache, 0x10000)
        assert cache.fht.predict(0x400, 0) == 0b111

    def test_predicted_footprint_prefetched_on_next_miss(self, cache, offchip):
        run_visit(cache, 0x10000, [0, 1, 2], pc=0x400)
        evict_page(cache, 0x10000)
        offchip_before = offchip.bytes_read
        # New page, same (pc, offset): the whole footprint is fetched.
        result = cache.access(read(0x90000, pc=0x400), 100_000)
        assert not result.hit
        assert result.fill_blocks == 3
        assert offchip.bytes_read - offchip_before == 3 * 64

    def test_prefetched_blocks_hit(self, cache):
        run_visit(cache, 0x10000, [0, 1, 2], pc=0x400)
        evict_page(cache, 0x10000)
        cache.access(read(0x90000, pc=0x400), 100_000)
        assert cache.access(read(0x90000 + 64, pc=0x400), 100_100).hit
        assert cache.access(read(0x90000 + 128, pc=0x400), 100_200).hit


class TestUnderprediction:
    def test_unpredicted_block_misses_and_fetches_one(self, cache, offchip):
        run_visit(cache, 0x10000, [0, 1], pc=0x400)
        evict_page(cache, 0x10000)
        cache.access(read(0x90000, pc=0x400), 100_000)
        before = offchip.bytes_read
        counter_before = cache.stats.counter("underprediction_misses").value
        result = cache.access(read(0x90000 + 5 * 64, pc=0x408), 100_100)
        assert not result.hit
        assert result.fill_blocks == 1
        assert offchip.bytes_read - before == 64
        assert cache.stats.counter("underprediction_misses").value == counter_before + 1

    def test_underpredicted_block_hits_after_fill(self, cache):
        cache.access(read(0x10000, pc=0x400), 0)
        cache.access(read(0x10000 + 7 * 64, pc=0x404), 100)
        assert cache.access(read(0x10000 + 7 * 64, pc=0x404), 200).hit


class TestFeedback:
    def test_eviction_updates_fht_with_demanded_only(self, cache):
        # Learn {0,1,2}, then a residency where only 0 and 1 are demanded.
        run_visit(cache, 0x10000, [0, 1, 2], pc=0x400)
        evict_page(cache, 0x10000)
        run_visit(cache, 0x90000, [0, 1], pc=0x400, start=100_000)
        evict_page(cache, 0x90000, start=200_000)
        # Latest footprint (blocks 0,1) replaces the old one.
        assert cache.fht.predict(0x400, 0) == 0b11

    def test_overprediction_accounted(self, cache):
        run_visit(cache, 0x10000, [0, 1, 2], pc=0x400)
        evict_page(cache, 0x10000)
        # Fetch 3 blocks, demand only block 0.
        cache.access(read(0x90000, pc=0x400), 100_000)
        evict_page(cache, 0x90000, start=200_000)
        assert cache.predictor_stats.overpredicted_blocks >= 2


class TestDirtyEvictions:
    def test_dirty_blocks_written_back(self, cache, offchip):
        cache.access(write(0x10000, pc=0x400), 0)
        cache.access(write(0x10000 + 64, pc=0x404), 10)
        before = offchip.bytes_written
        evict_page(cache, 0x10000)
        assert offchip.bytes_written - before == 128

    def test_clean_eviction_writes_nothing(self, cache, offchip):
        run_visit(cache, 0x10000, [0, 1], pc=0x400)
        before = offchip.bytes_written
        evict_page(cache, 0x10000)
        assert offchip.bytes_written - before == 0


class TestSingletonOptimization:
    def test_singleton_prediction_bypasses(self, cache):
        # Teach the FHT that (pc=0x500, offset=4) is a singleton.
        cache.access(read(0x10000 + 4 * 64, pc=0x500), 0)
        evict_page(cache, 0x10000)
        resident_before = cache.resident_pages
        result = cache.access(read(0x90000 + 4 * 64, pc=0x500), 100_000)
        assert result.bypassed
        assert not result.hit
        assert cache.resident_pages == resident_before
        assert cache.singleton_table.lookup(0x90000) is not None

    def test_second_access_corrects_singleton(self, cache):
        cache.access(read(0x10000 + 4 * 64, pc=0x500), 0)
        evict_page(cache, 0x10000)
        cache.access(read(0x90000 + 4 * 64, pc=0x500), 100_000)
        # Different offset on the bypassed page: allocate it after all.
        result = cache.access(read(0x90000 + 9 * 64, pc=0x504), 100_100)
        assert not result.bypassed
        assert cache.resident_pages > 0
        assert cache.singleton_table.lookup(0x90000) is None
        assert cache.stats.counter("singleton_corrections").value == 1

    def test_singleton_disabled_always_allocates(self, stacked, offchip):
        cache = make_cache(stacked, offchip, singleton=False)
        cache.access(read(0x10000 + 4 * 64, pc=0x500), 0)
        evict_page(cache, 0x10000)
        result = cache.access(read(0x90000 + 4 * 64, pc=0x500), 100_000)
        assert not result.bypassed
        # The page was allocated (a bypass would have left it non-resident).
        assert cache.tags.lookup(0x90000) is not None

    def test_repeat_bypass_same_offset(self, cache):
        cache.access(read(0x10000 + 4 * 64, pc=0x500), 0)
        evict_page(cache, 0x10000)
        cache.access(read(0x90000 + 4 * 64, pc=0x500), 100_000)
        result = cache.access(read(0x90000 + 4 * 64, pc=0x500), 100_200)
        assert result.bypassed


class TestMetadata:
    def test_storage_includes_all_structures(self, cache):
        total = cache.storage_bytes()
        assert total == (
            cache.tags.storage_bytes()
            + cache.fht.storage_bytes()
            + cache.singleton_table.storage_bytes()
        )

    def test_mismatched_fht_rejected(self, stacked, offchip):
        fht = FootprintHistoryTable(num_entries=64, associativity=8, blocks_per_page=16)
        with pytest.raises(ValueError):
            FootprintCache(
                stacked, offchip, capacity_bytes=16 * 2048, fht=fht
            )

    def test_reset_stats_clears_accuracy_keeps_learning(self, cache):
        run_visit(cache, 0x10000, [0, 1, 2], pc=0x400)
        evict_page(cache, 0x10000)
        cache.reset_stats()
        assert cache.predictor_stats.demanded_blocks == 0
        assert cache.fht.predict(0x400, 0) == 0b111
        assert cache.accesses == 0


class TestWriteMiss:
    def test_write_triggering_miss_marks_dirty(self, cache, offchip):
        cache.access(write(0x10000, pc=0x400), 0)
        before = offchip.bytes_written
        evict_page(cache, 0x10000)
        assert offchip.bytes_written - before == 64
