"""Calibration regression tests: the workload properties the paper's
characterisation (Section 6.1) relies on must not silently drift.

These pin the qualitative Fig. 4 shapes per workload so that future
profile edits that would invalidate EXPERIMENTS.md fail loudly here.
"""

import pytest

from repro.analysis.page_density import PageDensityTracker
from repro.workloads.cloudsuite import WORKLOAD_NAMES, make_workload
from repro.workloads.trace import materialize, trace_statistics

MB = 1024 * 1024
N = 40_000


@pytest.fixture(scope="module")
def traces():
    return {
        name: materialize(make_workload(name, seed=0, dataset_scale=0.25).requests(N))
        for name in WORKLOAD_NAMES
    }


def density(trace, capacity_bytes):
    tracker = PageDensityTracker(capacity_bytes)
    for request in trace:
        tracker.observe(request)
    tracker.finish()
    return tracker


class TestFig4Shapes:
    def test_density_grows_with_capacity(self, traces):
        for name, trace in traces.items():
            small = density(trace, 256 * 1024).histogram.mean()
            large = density(trace, 2 * MB).histogram.mean()
            assert large >= small * 0.9, name

    def test_singletons_significant_everywhere(self, traces):
        for name, trace in traces.items():
            fractions = density(trace, 256 * 1024).bucket_fractions()
            assert fractions["1 Block"] > 0.1, name

    def test_web_search_densest(self, traces):
        means = {
            name: density(trace, 2 * MB).histogram.mean()
            for name, trace in traces.items()
        }
        assert means["web_search"] == max(means.values())

    def test_mapreduce_among_sparsest(self, traces):
        """MapReduce and SAT Solver are the paper's low-density workloads."""
        means = {
            name: density(trace, 2 * MB).histogram.mean()
            for name, trace in traces.items()
        }
        ranked = sorted(means, key=means.get)
        assert "mapreduce" in ranked[:2]
        assert "sat_solver" in ranked[:2]


class TestTraceShape:
    def test_write_fractions_in_band(self, traces):
        for name, trace in traces.items():
            stats = trace_statistics(trace)
            expected_read_heavy = name == "web_search"
            if expected_read_heavy:
                assert stats.write_fraction < 0.12, name
            else:
                assert 0.1 < stats.write_fraction < 0.45, name

    def test_data_serving_most_bandwidth_hungry(self, traces):
        apki = {
            name: trace_statistics(trace).accesses_per_kilo_instruction
            for name, trace in traces.items()
        }
        assert apki["data_serving"] == max(apki.values())
        assert apki["multiprogrammed"] == min(apki.values())

    def test_instruction_mix_covers_all_pcs_eventually(self, traces):
        for name, trace in traces.items():
            pcs = {r.pc for r in trace}
            assert len(pcs) >= 20, name
