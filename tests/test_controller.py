"""Unit tests for the memory controller (timing + traffic + energy)."""

import pytest

from repro.dram.address_mapping import AddressMapping
from repro.dram.bank import RowBufferPolicy
from repro.dram.controller import AccessOutcome, MemoryController
from repro.dram.timing import OFF_CHIP_DDR3_1600, STACKED_DDR3_3200


def make_controller(policy=RowBufferPolicy.OPEN_PAGE, channels=1, interleave=2048):
    return MemoryController(
        timing=OFF_CHIP_DDR3_1600,
        mapping=AddressMapping(
            channels=channels, banks_per_channel=8, row_bytes=2048, interleave_bytes=interleave
        ),
        policy=policy,
    )


class TestBasicAccess:
    def test_first_access_row_closed(self):
        controller = make_controller()
        result = controller.access(0, 64, False, now=0)
        assert result.outcome is AccessOutcome.ROW_CLOSED
        assert result.queue_cycles == 0
        assert result.latency > 0

    def test_row_hit_faster_than_conflict(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        hit = controller.access(64, 64, False, 10_000)
        assert hit.outcome is AccessOutcome.ROW_HIT
        # Another row in the same bank: stride past all channels/banks/rows.
        conflict = controller.access(8 * 2048, 64, False, 20_000)
        assert conflict.outcome is AccessOutcome.ROW_CONFLICT
        assert hit.latency < conflict.latency

    def test_invalid_arguments(self):
        controller = make_controller()
        with pytest.raises(ValueError):
            controller.access(0, 0, False, 0)
        with pytest.raises(ValueError):
            controller.access(0, 64, False, -5)


class TestQueueing:
    def test_back_to_back_accesses_serialise(self):
        controller = make_controller()
        first = controller.access(0, 2048, False, 0)
        second = controller.access(0, 2048, False, 0)
        assert second.start_cycle >= first.finish_cycle
        assert second.queue_cycles > 0

    def test_different_banks_do_not_serialise(self):
        controller = make_controller()
        first = controller.access(0, 2048, False, 0)
        # Next page maps to another bank (1 channel -> bank rotation).
        second = controller.access(2048, 2048, False, 0)
        assert second.queue_cycles == 0
        assert first.queue_cycles == 0


class TestTraffic:
    def test_bytes_accounted(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        controller.access(0, 128, True, 0)
        assert controller.bytes_read == 64
        assert controller.bytes_written == 128
        assert controller.total_bytes == 192

    def test_access_count_and_row_hits(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        controller.access(64, 64, False, 0)
        assert controller.access_count == 2
        assert controller.row_hit_count == 1
        assert controller.row_hit_ratio == pytest.approx(0.5)

    def test_row_hit_ratio_empty(self):
        assert make_controller().row_hit_ratio == 0.0


class TestEnergy:
    def test_read_energy_accumulates(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        assert controller.energy.read_nj > 0
        assert controller.energy.write_nj == 0

    def test_row_hits_burn_no_activate_energy(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        before = controller.energy.activate_precharge_nj
        controller.access(64, 64, False, 0)
        assert controller.energy.activate_precharge_nj == before

    def test_close_page_burns_activate_every_access(self):
        controller = make_controller(policy=RowBufferPolicy.CLOSE_PAGE)
        controller.access(0, 64, False, 0)
        first = controller.energy.activate_precharge_nj
        controller.access(0, 64, False, 0)
        assert controller.energy.activate_precharge_nj == pytest.approx(2 * first)


class TestUtilization:
    def test_utilization_bounded(self):
        controller = make_controller()
        for i in range(50):
            controller.access(i * 64, 64, False, 0)
        assert 0.0 < controller.utilization(10_000) <= 1.0

    def test_utilization_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            make_controller().utilization(0)

    def test_peak_bandwidth(self):
        # DDR3-1600 x64: 12.8GB/s = 4.266B per 3GHz CPU cycle.
        controller = make_controller()
        assert controller.peak_bandwidth_bytes_per_cycle() == pytest.approx(4.266, rel=1e-3)

    def test_stacked_peak_bandwidth_is_16x(self):
        # Four 128-bit DDR3-3200 channels vs one 64-bit DDR3-1600 channel:
        # 2 (width) x 2 (rate) x 4 (channels) = 16x per pod.
        stacked = MemoryController(
            timing=STACKED_DDR3_3200,
            mapping=AddressMapping(
                channels=4, banks_per_channel=8, row_bytes=2048, interleave_bytes=2048
            ),
        )
        offchip = make_controller()
        ratio = stacked.peak_bandwidth_bytes_per_cycle() / offchip.peak_bandwidth_bytes_per_cycle()
        assert ratio == pytest.approx(16.0)


class TestReset:
    def test_reset_stats(self):
        controller = make_controller()
        controller.access(0, 64, True, 0)
        controller.reset_stats()
        assert controller.access_count == 0
        assert controller.total_bytes == 0
        assert controller.energy.total_nj == 0.0

    def test_reset_keeps_row_state(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        controller.reset_stats()
        result = controller.access(64, 64, False, 10_000)
        assert result.outcome is AccessOutcome.ROW_HIT


class TestInlinedAccessEquivalence:
    """The controller inlines locate + Bank.access + energy accounting.

    Bank and AddressMapping remain the reference implementations; this
    randomized test replays the same access sequence through the
    de-virtualized MemoryController.access and through a step-by-step
    reference built from those primitives, and requires identical
    outcomes, timing, traffic, energy and bank state.
    """

    @staticmethod
    def _reference_access(mapping, timing, policy, banks, energy_model, state, request):
        """One access exactly as the pre-optimisation controller computed it."""
        from repro.dram.bank import RowOutcome
        from repro.dram.controller import AccessOutcome

        address, num_bytes, is_write, now = request
        channel, bank_index, row = mapping.locate(address)
        bank = banks[channel][bank_index]
        bank_access = bank.access(row)
        outcome = {
            RowOutcome.HIT: AccessOutcome.ROW_HIT,
            RowOutcome.CLOSED: AccessOutcome.ROW_CLOSED,
            RowOutcome.CONFLICT: AccessOutcome.ROW_CONFLICT,
        }[bank_access.outcome]
        if bank_access.outcome is RowOutcome.HIT:
            row_bus_cycles = timing.row_hit_bus_cycles
        elif bank_access.outcome is RowOutcome.CLOSED:
            row_bus_cycles = timing.row_closed_bus_cycles
        else:
            row_bus_cycles = timing.row_conflict_bus_cycles
        stripe = min(num_bytes, mapping.interleave_bytes)
        burst = timing.burst_cycles(stripe)
        if is_write:
            row_bus_cycles += timing.t_wr if policy is RowBufferPolicy.CLOSE_PAGE else 0
        device_cycles = timing.to_cpu_cycles(row_bus_cycles + burst, 3000)
        start = bank.reserve(now, device_cycles)
        state["energy"].record_row_operations(bank_access.activates, bank_access.precharges)
        if is_write:
            state["energy"].record_write(num_bytes)
            state["bytes_written"] += num_bytes
        else:
            state["energy"].record_read(num_bytes)
            state["bytes_read"] += num_bytes
        state["busy"] += device_cycles
        return outcome, start, start + device_cycles, start + device_cycles - now

    @pytest.mark.parametrize("policy", [RowBufferPolicy.OPEN_PAGE, RowBufferPolicy.CLOSE_PAGE])
    @pytest.mark.parametrize("interleave", [64, 2048])
    def test_randomized_equivalence(self, policy, interleave):
        import random

        from repro.dram.bank import Bank
        from repro.dram.energy import DramEnergyCounters, DramEnergyModel

        rng = random.Random(13)
        mapping = AddressMapping(
            channels=2, banks_per_channel=4, row_bytes=2048,
            interleave_bytes=interleave,
        )
        controller = MemoryController(
            timing=STACKED_DDR3_3200, mapping=mapping, policy=policy,
            energy_model=DramEnergyModel.stacked(),
        )
        banks = [[Bank(policy) for _ in range(4)] for _ in range(2)]
        state = {
            "energy": DramEnergyCounters(model=DramEnergyModel.stacked()),
            "bytes_read": 0, "bytes_written": 0, "busy": 0,
        }

        now = 0
        for _ in range(2_000):
            request = (
                rng.randrange(0, 1 << 22) & ~63,
                rng.choice([64, 128, 512, 2048]),
                rng.random() < 0.3,
                now,
            )
            result = controller.access(*request)
            outcome, start, finish, latency = self._reference_access(
                mapping, STACKED_DDR3_3200, policy, banks,
                DramEnergyModel.stacked(), state, request,
            )
            assert result.outcome is outcome
            assert (result.start_cycle, result.finish_cycle, result.latency) == (
                start, finish, latency
            )
            now += rng.randrange(0, 200)

        assert controller.bytes_read == state["bytes_read"]
        assert controller.bytes_written == state["bytes_written"]
        assert controller.busy_cpu_cycles == state["busy"]
        assert controller.energy.activate_precharge_nj == state["energy"].activate_precharge_nj
        assert controller.energy.read_nj == state["energy"].read_nj
        assert controller.energy.write_nj == state["energy"].write_nj
        for channel in range(2):
            for index in range(4):
                reference_bank = banks[channel][index]
                live_bank = controller._banks[channel][index]
                assert live_bank.open_row == reference_bank.open_row
                assert live_bank.busy_until == reference_bank.busy_until
                assert live_bank.activate_count == reference_bank.activate_count
                assert live_bank.precharge_count == reference_bank.precharge_count
