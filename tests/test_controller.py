"""Unit tests for the memory controller (timing + traffic + energy)."""

import pytest

from repro.dram.address_mapping import AddressMapping
from repro.dram.bank import RowBufferPolicy
from repro.dram.controller import AccessOutcome, MemoryController
from repro.dram.timing import OFF_CHIP_DDR3_1600, STACKED_DDR3_3200


def make_controller(policy=RowBufferPolicy.OPEN_PAGE, channels=1, interleave=2048):
    return MemoryController(
        timing=OFF_CHIP_DDR3_1600,
        mapping=AddressMapping(
            channels=channels, banks_per_channel=8, row_bytes=2048, interleave_bytes=interleave
        ),
        policy=policy,
    )


class TestBasicAccess:
    def test_first_access_row_closed(self):
        controller = make_controller()
        result = controller.access(0, 64, False, now=0)
        assert result.outcome is AccessOutcome.ROW_CLOSED
        assert result.queue_cycles == 0
        assert result.latency > 0

    def test_row_hit_faster_than_conflict(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        hit = controller.access(64, 64, False, 10_000)
        assert hit.outcome is AccessOutcome.ROW_HIT
        # Another row in the same bank: stride past all channels/banks/rows.
        conflict = controller.access(8 * 2048, 64, False, 20_000)
        assert conflict.outcome is AccessOutcome.ROW_CONFLICT
        assert hit.latency < conflict.latency

    def test_invalid_arguments(self):
        controller = make_controller()
        with pytest.raises(ValueError):
            controller.access(0, 0, False, 0)
        with pytest.raises(ValueError):
            controller.access(0, 64, False, -5)


class TestQueueing:
    def test_back_to_back_accesses_serialise(self):
        controller = make_controller()
        first = controller.access(0, 2048, False, 0)
        second = controller.access(0, 2048, False, 0)
        assert second.start_cycle >= first.finish_cycle
        assert second.queue_cycles > 0

    def test_different_banks_do_not_serialise(self):
        controller = make_controller()
        first = controller.access(0, 2048, False, 0)
        # Next page maps to another bank (1 channel -> bank rotation).
        second = controller.access(2048, 2048, False, 0)
        assert second.queue_cycles == 0
        assert first.queue_cycles == 0


class TestTraffic:
    def test_bytes_accounted(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        controller.access(0, 128, True, 0)
        assert controller.bytes_read == 64
        assert controller.bytes_written == 128
        assert controller.total_bytes == 192

    def test_access_count_and_row_hits(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        controller.access(64, 64, False, 0)
        assert controller.access_count == 2
        assert controller.row_hit_count == 1
        assert controller.row_hit_ratio == pytest.approx(0.5)

    def test_row_hit_ratio_empty(self):
        assert make_controller().row_hit_ratio == 0.0


class TestEnergy:
    def test_read_energy_accumulates(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        assert controller.energy.read_nj > 0
        assert controller.energy.write_nj == 0

    def test_row_hits_burn_no_activate_energy(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        before = controller.energy.activate_precharge_nj
        controller.access(64, 64, False, 0)
        assert controller.energy.activate_precharge_nj == before

    def test_close_page_burns_activate_every_access(self):
        controller = make_controller(policy=RowBufferPolicy.CLOSE_PAGE)
        controller.access(0, 64, False, 0)
        first = controller.energy.activate_precharge_nj
        controller.access(0, 64, False, 0)
        assert controller.energy.activate_precharge_nj == pytest.approx(2 * first)


class TestUtilization:
    def test_utilization_bounded(self):
        controller = make_controller()
        for i in range(50):
            controller.access(i * 64, 64, False, 0)
        assert 0.0 < controller.utilization(10_000) <= 1.0

    def test_utilization_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            make_controller().utilization(0)

    def test_peak_bandwidth(self):
        # DDR3-1600 x64: 12.8GB/s = 4.266B per 3GHz CPU cycle.
        controller = make_controller()
        assert controller.peak_bandwidth_bytes_per_cycle() == pytest.approx(4.266, rel=1e-3)

    def test_stacked_peak_bandwidth_is_16x(self):
        # Four 128-bit DDR3-3200 channels vs one 64-bit DDR3-1600 channel:
        # 2 (width) x 2 (rate) x 4 (channels) = 16x per pod.
        stacked = MemoryController(
            timing=STACKED_DDR3_3200,
            mapping=AddressMapping(
                channels=4, banks_per_channel=8, row_bytes=2048, interleave_bytes=2048
            ),
        )
        offchip = make_controller()
        ratio = stacked.peak_bandwidth_bytes_per_cycle() / offchip.peak_bandwidth_bytes_per_cycle()
        assert ratio == pytest.approx(16.0)


class TestReset:
    def test_reset_stats(self):
        controller = make_controller()
        controller.access(0, 64, True, 0)
        controller.reset_stats()
        assert controller.access_count == 0
        assert controller.total_bytes == 0
        assert controller.energy.total_nj == 0.0

    def test_reset_keeps_row_state(self):
        controller = make_controller()
        controller.access(0, 64, False, 0)
        controller.reset_stats()
        result = controller.access(64, 64, False, 10_000)
        assert result.outcome is AccessOutcome.ROW_HIT
