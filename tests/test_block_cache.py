"""Unit tests for the block-based (Loh-Hill) DRAM cache."""

import pytest

from repro.caches.block_cache import BlockBasedCache
from repro.caches.missmap import MissMap
from tests.conftest import read, write


@pytest.fixture
def cache(stacked, offchip):
    missmap = MissMap(num_entries=4800, associativity=24, latency_cycles=9)
    return BlockBasedCache(
        stacked, offchip, capacity_bytes=64 * 2048, missmap=missmap
    )


class TestBasics:
    def test_first_access_misses(self, cache):
        result = cache.access(read(0x10000), 0)
        assert not result.hit
        assert result.fill_blocks == 1
        assert cache.miss_ratio == 1.0

    def test_second_access_hits(self, cache):
        cache.access(read(0x10000), 0)
        result = cache.access(read(0x10000), 100)
        assert result.hit
        assert cache.hits == 1

    def test_hit_includes_missmap_and_tag_penalty(self, cache):
        cache.access(read(0x10000), 0)
        result = cache.access(read(0x10000), 100_000)
        # MissMap lookup + compound DRAM access (ACT, CAS tags, CAS data).
        assert result.latency > cache.missmap.latency_cycles

    def test_miss_goes_off_chip(self, cache, offchip):
        cache.access(read(0x10000), 0)
        assert offchip.bytes_read == 64

    def test_adjacent_blocks_are_independent(self, cache):
        cache.access(read(0x10000), 0)
        result = cache.access(read(0x10040), 10)
        assert not result.hit

    def test_invalid_capacity(self, stacked, offchip):
        with pytest.raises(ValueError):
            BlockBasedCache(
                stacked, offchip, capacity_bytes=1000,
                missmap=MissMap(num_entries=24, associativity=24),
            )


class TestWritebacks:
    def test_dirty_eviction_writes_back(self, stacked, offchip):
        # Single-set cache: capacity = one row = 30 blocks.
        missmap = MissMap(num_entries=4800, associativity=24)
        cache = BlockBasedCache(
            stacked, offchip, capacity_bytes=2048, missmap=missmap
        )
        cache.access(write(0), 0)
        written_before = offchip.bytes_written
        # Fill the set's 30 ways; block 0's set is every block address here.
        for i in range(1, 31):
            cache.access(read(i * 64), i * 1000)
        assert offchip.bytes_written > written_before

    def test_clean_eviction_silent(self, stacked, offchip):
        missmap = MissMap(num_entries=4800, associativity=24)
        cache = BlockBasedCache(
            stacked, offchip, capacity_bytes=2048, missmap=missmap
        )
        for i in range(31):
            cache.access(read(i * 64), i * 1000)
        assert offchip.bytes_written == 0


class TestMissMapInteraction:
    def test_missmap_eviction_purges_blocks(self, stacked, offchip):
        # Tiny MissMap: 2 entries, 1 way each.
        missmap = MissMap(num_entries=2, associativity=1)
        cache = BlockBasedCache(
            stacked, offchip, capacity_bytes=64 * 2048, missmap=missmap
        )
        cache.access(read(0), 0)
        cache.access(read(4096), 10)
        # Third segment evicts the first MissMap entry -> block 0 purged.
        cache.access(read(2 * 4096), 20)
        result = cache.access(read(0), 30)
        assert not result.hit
        assert cache.stats.counter("missmap_forced_evictions").value >= 1

    def test_missmap_dirty_purge_writes_back(self, stacked, offchip):
        missmap = MissMap(num_entries=2, associativity=1)
        cache = BlockBasedCache(
            stacked, offchip, capacity_bytes=64 * 2048, missmap=missmap
        )
        cache.access(write(0), 0)
        cache.access(read(4096), 10)
        before = offchip.bytes_written
        cache.access(read(2 * 4096), 20)
        assert offchip.bytes_written == before + 64


class TestConsistency:
    def test_many_accesses_consistent(self, cache):
        # MissMap and tag store must stay in sync through heavy churn.
        for i in range(2000):
            cache.access(read((i * 7919 % 512) * 64), i * 10)
        assert cache.accesses == 2000
        assert 0 < cache.hits < 2000
