"""Tests for the perf bench harness and the ``repro perf`` subcommand."""

import json
import os

import pytest

from repro.__main__ import build_parser, main
from repro.perf.bench import (
    SCHEMA,
    default_output_path,
    load_baseline,
    run_bench,
    write_bench,
)


class TestRunBench:
    def test_payload_shape(self):
        payload = run_bench(
            designs=("footprint",), num_requests=2_000, repeats=1
        )
        assert payload["schema"] == SCHEMA
        assert payload["protocol"]["num_requests"] == 2_000
        generation = payload["trace_generation"]
        assert generation["requests_per_second"] > 0
        bench = payload["designs"]["footprint"]
        assert bench["warm_requests_per_second"] > 0
        assert bench["cold_requests_per_second"] > 0

    def test_headline_compares_to_checked_in_baseline(self):
        baseline = load_baseline()
        assert baseline is not None, "benchmarks/perf_baseline.json is checked in"
        assert baseline["requests_per_second"] > 0
        payload = run_bench(designs=("footprint",), num_requests=2_000, repeats=1)
        headline = payload["headline"]
        assert headline["design"] == "footprint"
        assert headline["pre_pr_requests_per_second"] == baseline["requests_per_second"]
        assert headline["speedup_vs_pre_pr"] > 0

    def test_invalid_requests(self):
        with pytest.raises(ValueError):
            run_bench(num_requests=0)


class TestWriteBench:
    def test_writes_json(self, tmp_path):
        payload = run_bench(designs=("baseline",), num_requests=1_000, repeats=1)
        path = write_bench(payload, str(tmp_path / "BENCH_perf.json"))
        with open(path) as handle:
            assert json.load(handle)["schema"] == SCHEMA

    def test_default_path_is_repo_root(self):
        path = default_output_path()
        assert os.path.basename(path) == "BENCH_perf.json"
        assert os.path.isdir(os.path.join(os.path.dirname(path), "benchmarks"))


class TestPerfCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["perf", "--quick"])
        assert args.quick and args.designs is None
        assert args.perf_workload == "web_search"

    def test_unknown_design_rejected(self, tmp_path, capsys):
        code = main(["perf", "--designs", "bogus", "--out", str(tmp_path / "b.json")])
        assert code == 2
        assert "unknown design" in capsys.readouterr().err

    def test_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        history = tmp_path / "BENCH_history.jsonl"
        code = main([
            "perf", "--designs", "footprint", "--requests", "2000",
            "--repeats", "1", "--out", str(out), "--history", str(history),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "warm trace cache" in stdout
        assert "bench report written" in stdout
        assert "history appended" in stdout
        payload = json.loads(out.read_text())
        assert "footprint" in payload["designs"]
        assert "speedup_vs_pre_pr" in payload["headline"]
        records = [json.loads(line) for line in history.read_text().splitlines()]
        assert [r["design"] for r in records] == ["footprint"]
