"""Unit tests for configuration and system construction."""

import dataclasses
import json

import pytest

from repro.caches.base import BaselineMemory
from repro.caches.block_cache import BlockBasedCache
from repro.caches.chop_cache import ChopCache
from repro.caches.ideal_cache import IdealCache
from repro.caches.page_cache import PageBasedCache
from repro.caches.subblock_cache import SubBlockedCache
from repro.core.footprint_cache import FootprintCache
from repro.dram.bank import RowBufferPolicy
from repro.dram.timing import (
    OFF_CHIP_DDR3_1600,
    STACKED_DDR3_3200,
    register_timing_preset,
    timing_preset,
)
from repro.mem.hierarchy import L2Cache
from repro.sim.config import (
    DESIGNS,
    CacheConfig,
    SimulationConfig,
    SystemConfig,
    TimingConfig,
    make_system_config,
)
from repro.sim.system import build_system

MB = 1024 * 1024


class TestSystemConfig:
    def test_table3_defaults(self):
        config = SystemConfig()
        assert config.num_cores == 16
        assert config.cpu_mhz == 3000
        assert config.offchip_channels == 1
        assert config.stacked_channels == 4
        assert config.dram_row_bytes == 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)
        with pytest.raises(ValueError):
            SystemConfig(base_cpi=0)
        with pytest.raises(ValueError):
            SystemConfig(exposed_latency_fraction=0)
        with pytest.raises(ValueError):
            SystemConfig(stacked_channels=-1)
        with pytest.raises(ValueError):
            SystemConfig(extra_l2_bytes=-1)

    def test_make_system_config_overrides(self):
        config = make_system_config({"offchip_channels": 2, "extra_l2_bytes": 16384})
        assert config.offchip_channels == 2
        assert config.extra_l2_bytes == 16384

    def test_make_system_config_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="warp_drive"):
            make_system_config({"warp_drive": True})


class TestTimingConfig:
    def test_default_resolves_per_role(self):
        assert TimingConfig().resolve("stacked") == STACKED_DDR3_3200
        assert TimingConfig().resolve("offchip") == OFF_CHIP_DDR3_1600

    def test_named_preset(self):
        assert TimingConfig(preset="ddr3_1600").resolve("stacked") == OFF_CHIP_DDR3_1600

    def test_latency_scale_matches_halved_latency(self):
        resolved = TimingConfig(latency_scale=0.5).resolve("stacked")
        halved = STACKED_DDR3_3200.with_halved_latency()
        assert resolved == halved

    def test_bus_mhz_override(self):
        assert TimingConfig(bus_mhz=2000).resolve("stacked").bus_mhz == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingConfig(latency_scale=0)
        with pytest.raises(ValueError):
            TimingConfig(preset="")
        with pytest.raises(ValueError):
            TimingConfig(bus_mhz=0)
        with pytest.raises(ValueError, match="unknown timing preset"):
            TimingConfig(preset="ddr9").resolve("stacked")
        with pytest.raises(ValueError, match="unknown DRAM role"):
            TimingConfig().resolve("sideways")

    def test_register_preset(self):
        try:
            register_timing_preset("test_ddr", OFF_CHIP_DDR3_1600)
            assert timing_preset("test_ddr") == OFF_CHIP_DDR3_1600
            assert TimingConfig(preset="test_ddr").resolve("stacked") == OFF_CHIP_DDR3_1600
            with pytest.raises(ValueError, match="already defined"):
                register_timing_preset("test_ddr", STACKED_DDR3_3200)
        finally:
            from repro.dram.timing import TIMING_PRESETS

            TIMING_PRESETS.pop("test_ddr", None)

    def test_default_name_reserved(self):
        with pytest.raises(ValueError):
            register_timing_preset("default", OFF_CHIP_DDR3_1600)


class TestCacheConfig:
    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(design="magic")

    def test_page_size_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(page_size=3000)

    def test_tag_latency_derived_from_table4(self):
        config = CacheConfig(design="footprint", capacity_bytes=256 * MB)
        assert config.resolved_tag_latency() == 9

    def test_tag_latency_override(self):
        config = CacheConfig(design="footprint", tag_latency=5)
        assert config.resolved_tag_latency() == 5


class TestSimulationConfig:
    def test_warmup_requests(self):
        config = SimulationConfig(num_requests=1000, warmup_fraction=0.25)
        assert config.warmup_requests == 250

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_requests=0)
        with pytest.raises(ValueError):
            SimulationConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(dataset_scale=0)

    def test_scaled_divides_capacity(self):
        config = SimulationConfig.scaled("web_search", "footprint", 256, scale=256)
        assert config.cache.capacity_bytes == MB

    def test_scaled_uses_paper_tag_latency(self):
        config = SimulationConfig.scaled("web_search", "footprint", 512, scale=256)
        assert config.cache.tag_latency == 11

    def test_scaled_missmap_proportional(self):
        config = SimulationConfig.scaled("web_search", "block", 256, scale=256)
        assert config.cache.missmap_entries == 192 * 1024 // 256

    def test_scaled_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            SimulationConfig.scaled("web_search", "footprint", 256, scale=0)

    def test_full_scale(self):
        config = SimulationConfig.full_scale("web_search", "page", 64)
        assert config.cache.capacity_bytes == 64 * MB
        assert config.dataset_scale == 64.0

    def test_scaled_accepts_variants(self):
        config = SimulationConfig.scaled(
            "web_search", "ideal", 256,
            system_overrides={"extra_l2_bytes": 16384},
            stacked_timing=TimingConfig(latency_scale=0.5),
        )
        assert config.system.extra_l2_bytes == 16384
        assert config.stacked_timing.latency_scale == 0.5
        assert config.offchip_timing == TimingConfig()


class TestConfigSerialization:
    def _config(self):
        return SimulationConfig.scaled(
            "web_search", "footprint", 256, num_requests=50_000, seed=3,
            system_overrides={"offchip_channels": 2},
            stacked_timing=TimingConfig(latency_scale=0.5),
            fht_entries=1024,
        )

    def test_round_trip_through_dict(self):
        config = self._config()
        assert SimulationConfig.from_dict(config.to_dict()) == config

    def test_round_trip_through_json(self):
        config = self._config()
        restored = SimulationConfig.from_json(config.to_json())
        assert restored == config
        # And the text itself is plain JSON.
        assert json.loads(config.to_json())["workload"] == "web_search"

    def test_defaults_round_trip(self):
        config = SimulationConfig()
        assert SimulationConfig.from_json(config.to_json()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="turbo"):
            SimulationConfig.from_dict({"turbo": True})

    def test_from_dict_accepts_nested_dicts(self):
        config = SimulationConfig.from_dict(
            {
                "workload": "mapreduce",
                "cache": {"design": "page", "capacity_bytes": MB},
                "system": {"num_cores": 8},
                "stacked_timing": {"latency_scale": 0.5},
                "num_requests": 1000,
            }
        )
        assert config.cache.design == "page"
        assert config.system.num_cores == 8
        assert config.stacked_timing == TimingConfig(latency_scale=0.5)
        assert config.offchip_timing == TimingConfig()


class TestBuildSystem:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_every_design_buildable(self, design):
        config = SimulationConfig.scaled("web_search", design, 256, scale=256)
        system = build_system(config)
        expected = {
            "baseline": BaselineMemory,
            "block": BlockBasedCache,
            "page": PageBasedCache,
            "footprint": FootprintCache,
            "subblock": SubBlockedCache,
            "chop": ChopCache,
            "ideal": IdealCache,
        }[design]
        assert isinstance(system.cache, expected)

    def test_baseline_has_no_stacked_dram(self):
        config = SimulationConfig.scaled("web_search", "baseline", 256, scale=256)
        assert build_system(config).stacked is None

    def test_block_design_uses_close_page(self):
        config = SimulationConfig.scaled("web_search", "block", 256, scale=256)
        system = build_system(config)
        assert system.stacked.policy is RowBufferPolicy.CLOSE_PAGE
        assert system.offchip.policy is RowBufferPolicy.CLOSE_PAGE

    def test_page_designs_use_open_page(self):
        for design in ("page", "footprint", "subblock"):
            config = SimulationConfig.scaled("web_search", design, 256, scale=256)
            system = build_system(config)
            assert system.stacked.policy is RowBufferPolicy.OPEN_PAGE
            assert system.offchip.policy is RowBufferPolicy.OPEN_PAGE

    def test_page_interleaving_for_page_designs(self):
        config = SimulationConfig.scaled("web_search", "footprint", 256, scale=256)
        system = build_system(config)
        assert system.offchip.mapping.interleave_bytes == 2048

    def test_block_interleaving_for_block_design(self):
        config = SimulationConfig.scaled("web_search", "block", 256, scale=256)
        system = build_system(config)
        assert system.offchip.mapping.interleave_bytes == 64

    def test_footprint_wiring(self):
        config = SimulationConfig.scaled(
            "web_search", "footprint", 256, scale=256, fht_entries=1024
        )
        system = build_system(config)
        assert system.cache.fht.num_entries == 1024
        assert system.cache.singleton_table is not None

    def test_footprint_singleton_disabled(self):
        config = SimulationConfig.scaled(
            "web_search", "footprint", 256, scale=256, singleton_optimization=False
        )
        system = build_system(config)
        assert system.cache.singleton_table is None

    def test_reset_stats_cascades(self):
        config = SimulationConfig.scaled("web_search", "footprint", 256, scale=256)
        system = build_system(config)
        for i, request in enumerate(system.workload.requests(200)):
            system.cache.access(request, i * 10)
        system.reset_stats()
        assert system.cache.accesses == 0
        assert system.offchip.total_bytes == 0
        assert system.stacked.total_bytes == 0

    def test_timing_variants_reach_the_controllers(self):
        config = SimulationConfig.scaled(
            "web_search", "footprint", 256, scale=256,
            stacked_timing=TimingConfig(latency_scale=0.5),
            offchip_timing=TimingConfig(preset="ddr3_3200"),
        )
        system = build_system(config)
        assert system.stacked.timing == STACKED_DDR3_3200.with_halved_latency()
        assert system.offchip.timing == STACKED_DDR3_3200

    def test_default_timing_is_table3(self):
        config = SimulationConfig.scaled("web_search", "footprint", 256, scale=256)
        system = build_system(config)
        assert system.stacked.timing == STACKED_DDR3_3200
        assert system.offchip.timing == OFF_CHIP_DDR3_1600

    def test_extra_l2_wraps_the_frontend(self):
        config = SimulationConfig.scaled(
            "web_search", "baseline", 64, scale=256,
            system_overrides={"extra_l2_bytes": 16384},
        )
        system = build_system(config)
        assert isinstance(system.frontend, L2Cache)
        assert system.frontend.backing is system.cache
        assert system.frontend.capacity_bytes == 16384
        assert system.frontend.hit_latency == 0
        assert not system.frontend.write_allocate

    def test_no_extra_l2_frontend_is_the_cache(self):
        config = SimulationConfig.scaled("web_search", "baseline", 64, scale=256)
        system = build_system(config)
        assert system.frontend is system.cache

    def test_reset_stats_covers_the_frontend(self):
        config = SimulationConfig.scaled(
            "web_search", "baseline", 64, scale=256,
            system_overrides={"extra_l2_bytes": 16384},
        )
        system = build_system(config)
        for i, request in enumerate(system.workload.requests(200)):
            system.frontend.access(request, i * 10)
        assert system.frontend.accesses == 200
        system.reset_stats()
        assert system.frontend.accesses == 0
        assert system.cache.accesses == 0
