"""Unit tests for configuration and system construction."""

import dataclasses

import pytest

from repro.caches.base import BaselineMemory
from repro.caches.block_cache import BlockBasedCache
from repro.caches.chop_cache import ChopCache
from repro.caches.ideal_cache import IdealCache
from repro.caches.page_cache import PageBasedCache
from repro.caches.subblock_cache import SubBlockedCache
from repro.core.footprint_cache import FootprintCache
from repro.dram.bank import RowBufferPolicy
from repro.sim.config import DESIGNS, CacheConfig, SimulationConfig, SystemConfig
from repro.sim.system import build_system

MB = 1024 * 1024


class TestSystemConfig:
    def test_table3_defaults(self):
        config = SystemConfig()
        assert config.num_cores == 16
        assert config.cpu_mhz == 3000
        assert config.offchip_channels == 1
        assert config.stacked_channels == 4
        assert config.dram_row_bytes == 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)
        with pytest.raises(ValueError):
            SystemConfig(base_cpi=0)
        with pytest.raises(ValueError):
            SystemConfig(exposed_latency_fraction=0)
        with pytest.raises(ValueError):
            SystemConfig(stacked_channels=-1)


class TestCacheConfig:
    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(design="magic")

    def test_page_size_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(page_size=3000)

    def test_tag_latency_derived_from_table4(self):
        config = CacheConfig(design="footprint", capacity_bytes=256 * MB)
        assert config.resolved_tag_latency() == 9

    def test_tag_latency_override(self):
        config = CacheConfig(design="footprint", tag_latency=5)
        assert config.resolved_tag_latency() == 5


class TestSimulationConfig:
    def test_warmup_requests(self):
        config = SimulationConfig(num_requests=1000, warmup_fraction=0.25)
        assert config.warmup_requests == 250

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_requests=0)
        with pytest.raises(ValueError):
            SimulationConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(dataset_scale=0)

    def test_scaled_divides_capacity(self):
        config = SimulationConfig.scaled("web_search", "footprint", 256, scale=256)
        assert config.cache.capacity_bytes == MB

    def test_scaled_uses_paper_tag_latency(self):
        config = SimulationConfig.scaled("web_search", "footprint", 512, scale=256)
        assert config.cache.tag_latency == 11

    def test_scaled_missmap_proportional(self):
        config = SimulationConfig.scaled("web_search", "block", 256, scale=256)
        assert config.cache.missmap_entries == 192 * 1024 // 256

    def test_scaled_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            SimulationConfig.scaled("web_search", "footprint", 256, scale=0)

    def test_full_scale(self):
        config = SimulationConfig.full_scale("web_search", "page", 64)
        assert config.cache.capacity_bytes == 64 * MB
        assert config.dataset_scale == 64.0


class TestBuildSystem:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_every_design_buildable(self, design):
        config = SimulationConfig.scaled("web_search", design, 256, scale=256)
        system = build_system(config)
        expected = {
            "baseline": BaselineMemory,
            "block": BlockBasedCache,
            "page": PageBasedCache,
            "footprint": FootprintCache,
            "subblock": SubBlockedCache,
            "chop": ChopCache,
            "ideal": IdealCache,
        }[design]
        assert isinstance(system.cache, expected)

    def test_baseline_has_no_stacked_dram(self):
        config = SimulationConfig.scaled("web_search", "baseline", 256, scale=256)
        assert build_system(config).stacked is None

    def test_block_design_uses_close_page(self):
        config = SimulationConfig.scaled("web_search", "block", 256, scale=256)
        system = build_system(config)
        assert system.stacked.policy is RowBufferPolicy.CLOSE_PAGE
        assert system.offchip.policy is RowBufferPolicy.CLOSE_PAGE

    def test_page_designs_use_open_page(self):
        for design in ("page", "footprint", "subblock"):
            config = SimulationConfig.scaled("web_search", design, 256, scale=256)
            system = build_system(config)
            assert system.stacked.policy is RowBufferPolicy.OPEN_PAGE
            assert system.offchip.policy is RowBufferPolicy.OPEN_PAGE

    def test_page_interleaving_for_page_designs(self):
        config = SimulationConfig.scaled("web_search", "footprint", 256, scale=256)
        system = build_system(config)
        assert system.offchip.mapping.interleave_bytes == 2048

    def test_block_interleaving_for_block_design(self):
        config = SimulationConfig.scaled("web_search", "block", 256, scale=256)
        system = build_system(config)
        assert system.offchip.mapping.interleave_bytes == 64

    def test_footprint_wiring(self):
        config = SimulationConfig.scaled(
            "web_search", "footprint", 256, scale=256, fht_entries=1024
        )
        system = build_system(config)
        assert system.cache.fht.num_entries == 1024
        assert system.cache.singleton_table is not None

    def test_footprint_singleton_disabled(self):
        config = SimulationConfig.scaled(
            "web_search", "footprint", 256, scale=256, singleton_optimization=False
        )
        system = build_system(config)
        assert system.cache.singleton_table is None

    def test_reset_stats_cascades(self):
        config = SimulationConfig.scaled("web_search", "footprint", 256, scale=256)
        system = build_system(config)
        for i, request in enumerate(system.workload.requests(200)):
            system.cache.access(request, i * 10)
        system.reset_stats()
        assert system.cache.accesses == 0
        assert system.offchip.total_bytes == 0
        assert system.stacked.total_bytes == 0
