"""Integration tests: the paper's qualitative results, end to end.

These replay moderate traces through full systems and assert the
*relationships* the paper reports — who wins, in which regime — rather
than absolute numbers.
"""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulator, quick_run

N = 120_000


def run(workload, design, capacity_mb=256, seed=0, **kwargs):
    return quick_run(
        workload, design=design, capacity_mb=capacity_mb,
        num_requests=N, seed=seed, **kwargs,
    )


@pytest.fixture(scope="module")
def web_search_results():
    return {
        design: run("web_search", design)
        for design in ("baseline", "block", "page", "footprint", "subblock", "ideal")
    }


class TestFig5Relationships:
    def test_miss_ratio_ordering(self, web_search_results):
        """Fig. 5a: page <= footprint << block."""
        r = web_search_results
        assert r["page"].miss_ratio <= r["footprint"].miss_ratio + 0.03
        assert r["footprint"].miss_ratio < r["block"].miss_ratio / 2

    def test_traffic_ordering(self, web_search_results):
        """Fig. 5b: block <= footprint << page."""
        r = web_search_results
        assert r["footprint"].offchip_traffic_normalized < 2 * max(
            0.5, r["block"].offchip_traffic_normalized
        )
        assert (
            r["page"].offchip_traffic_normalized
            > 1.5 * r["footprint"].offchip_traffic_normalized
        )

    def test_footprint_beats_page_traffic_substantially(self):
        """Headline: ~2.6x off-chip traffic reduction vs page-based."""
        ratios = []
        for workload in ("data_serving", "mapreduce", "web_frontend"):
            page = run(workload, "page")
            footprint = run(workload, "footprint")
            ratios.append(
                page.offchip_traffic_normalized / footprint.offchip_traffic_normalized
            )
        assert sum(ratios) / len(ratios) > 1.8

    def test_footprint_beats_block_hit_ratio_substantially(self):
        """Headline: ~4.7x higher hit ratio than block-based."""
        ratios = []
        for workload in ("data_serving", "web_search", "web_frontend"):
            block = run(workload, "block")
            footprint = run(workload, "footprint")
            ratios.append(footprint.hit_ratio / max(block.hit_ratio, 1e-6))
        assert sum(ratios) / len(ratios) > 3.0


class TestFig6Relationships:
    def test_footprint_beats_baseline(self, web_search_results):
        r = web_search_results
        assert r["footprint"].improvement_over(r["baseline"]) > 0.3

    def test_footprint_beats_block_and_page(self, web_search_results):
        r = web_search_results
        assert r["footprint"].aggregate_ipc >= 0.98 * r["page"].aggregate_ipc
        assert r["footprint"].aggregate_ipc > r["block"].aggregate_ipc

    def test_ideal_is_upper_bound(self, web_search_results):
        r = web_search_results
        for design in ("baseline", "block", "page", "footprint"):
            assert r[design].aggregate_ipc <= r["ideal"].aggregate_ipc * 1.02

    def test_footprint_achieves_most_of_ideal(self, web_search_results):
        """Section 6.3: Footprint Cache delivers ~82% of Ideal."""
        r = web_search_results
        assert r["footprint"].aggregate_ipc > 0.7 * r["ideal"].aggregate_ipc

    def test_page_design_struggles_at_small_capacity(self):
        """Fig. 6: page-based loses to baseline at 64MB for some workloads."""
        baseline = run("sat_solver", "baseline", capacity_mb=64)
        page = run("sat_solver", "page", capacity_mb=64)
        footprint = run("sat_solver", "footprint", capacity_mb=64)
        assert page.improvement_over(baseline) < 0.1
        assert footprint.improvement_over(baseline) > page.improvement_over(baseline)


class TestPredictorQuality:
    def test_low_overprediction(self):
        """Section 3.1: overpredictions waste bandwidth; ours stay low."""
        result = run("web_search", "footprint")
        assert result.predictor_overprediction < 0.15

    def test_sat_solver_harder_to_predict(self):
        """Section 6.2: SAT Solver's mutating dataset hurts coverage."""
        sat = run("sat_solver", "footprint")
        search = run("web_search", "footprint")
        assert sat.predictor_coverage < search.predictor_coverage

    def test_footprint_traffic_near_subblock(self, web_search_results):
        """Sub-blocked fetches exactly the demand; footprint should not
        fetch much more (low overprediction), yet hit far more often."""
        r = web_search_results
        assert (
            r["footprint"].offchip_traffic_normalized
            < 1.6 * r["subblock"].offchip_traffic_normalized
        )
        assert r["footprint"].hit_ratio > 2 * r["subblock"].hit_ratio


class TestSingletonOptimization:
    def test_singleton_bypass_reduces_misses(self):
        """Section 6.5: not caching singletons cuts the miss rate at small
        capacities (~10% in the paper)."""
        with_opt = run("mapreduce", "footprint", capacity_mb=64)
        without_opt = run(
            "mapreduce", "footprint", capacity_mb=64, singleton_optimization=False
        )
        assert with_opt.miss_ratio <= without_opt.miss_ratio * 1.02

    def test_bypass_ratio_nonzero_for_singleton_heavy(self):
        result = run("mapreduce", "footprint", capacity_mb=64)
        assert result.bypass_ratio > 0.02


class TestEnergyRelationships:
    def test_all_caches_cut_offchip_energy(self):
        """Fig. 10: every design reduces off-chip energy per instruction."""
        baseline = run("web_frontend", "baseline")
        for design in ("block", "page", "footprint"):
            result = run("web_frontend", design)
            assert (
                result.offchip_energy_per_instruction()
                < baseline.offchip_energy_per_instruction()
            )

    def test_footprint_lowest_offchip_energy(self):
        """Fig. 10: Footprint Cache burns the least off-chip energy."""
        results = {d: run("web_search", d) for d in ("block", "page", "footprint")}
        footprint = results["footprint"].offchip_energy_per_instruction()
        assert footprint <= results["page"].offchip_energy_per_instruction()
        assert footprint <= results["block"].offchip_energy_per_instruction() * 1.1

    def test_page_burns_most_burst_energy(self):
        """Fig. 10: the page design's overfetch shows up as burst energy."""
        page = run("data_serving", "page")
        footprint = run("data_serving", "footprint")
        instructions_page = max(1, page.performance.instructions)
        instructions_fp = max(1, footprint.performance.instructions)
        assert (
            page.offchip_read_write_nj / instructions_page
            > footprint.offchip_read_write_nj / instructions_fp
        )

    def test_block_design_activate_heavy(self):
        """Fig. 10/11: close-page block design is activate/precharge bound."""
        block = run("web_search", "block")
        assert block.offchip_activate_nj > block.offchip_read_write_nj


class TestDramLocality:
    def test_page_designs_have_high_offchip_row_hits(self):
        page = run("web_search", "page")
        block = run("web_search", "block")
        assert page.offchip_row_hit_ratio >= block.offchip_row_hit_ratio
