"""Job manager semantics: the async queue between HTTP and the engine.

Pins the contracts the serve layer promises:

* lifecycle: ``pending -> running -> done`` with a coherent event log;
* the warm-store fast path (a fully cached spec finishes with zero
  simulations);
* cooperative cancellation between points — everything completed before
  the cancel stays persisted in the store;
* fault isolation — one failing job reports ``failed`` without wedging
  the pool for the next job;
* the JSONL journal: lifecycle survives a restart, prior-run entries
  come back marked ``restored``;
* the untrusted-payload gate (``plugins`` rejected unless opted in).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.exp import ExperimentSpec, ResultStore, SweepRunner
from repro.serve import JobManager, JobState, spec_from_payload
from repro.sim.simulator import SimulationResult


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        workloads=("web_search",), designs=("page",),
        capacities_mb=64, num_requests=2000,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture(scope="module")
def result_payload() -> dict:
    """One real simulated result, reused under many distinct points."""
    runner = SweepRunner(store=None)
    return runner.run_one(tiny_spec().points()[0]).to_dict()


def warm_store(tmp_path, result_payload, spec) -> ResultStore:
    """A store already holding every point of ``spec``."""
    store = ResultStore(str(tmp_path / "store"))
    result = SimulationResult.from_dict(result_payload)
    for point in spec.points():
        store.put(point, result)
    return store


def wait_terminal(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snapshot = job.snapshot()
        if snapshot["state"] in ("done", "failed", "cancelled"):
            return snapshot
        time.sleep(0.02)
    raise AssertionError(f"job never finished: {job.snapshot()}")


def wait_for_point_event(job, timeout=60.0):
    """Block until the job has recorded at least one completed point."""
    cursor = 0
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for event in job.wait_events(cursor, timeout=1.0):
            cursor += 1
            if event["event"] == "point":
                return event
        if job.snapshot()["state"] in ("done", "failed", "cancelled"):
            raise AssertionError(f"job finished early: {job.snapshot()}")
    raise AssertionError("no point event arrived")


def make_manager(store, **kwargs) -> JobManager:
    return JobManager(store_dir=store.directory, workers=1, **kwargs)


@pytest.fixture()
def manager_factory(request):
    managers = []

    def build(store, **kwargs):
        manager = make_manager(store, **kwargs)
        managers.append(manager)
        return manager

    yield build
    for manager in managers:
        manager.shutdown(wait=False)


def test_warm_spec_runs_to_done_with_zero_simulations(
    tmp_path, result_payload, manager_factory
):
    spec = tiny_spec(seeds=(0, 1, 2))
    store = warm_store(tmp_path, result_payload, spec)
    manager = manager_factory(store)

    job = manager.submit_spec(spec)
    snapshot = wait_terminal(job)

    assert snapshot["state"] == JobState.DONE.value
    assert snapshot["error"] is None
    assert snapshot["progress"] == {
        "total": 3, "completed": 3, "served_from_store": 3, "simulated": 0,
    }
    # Event log shape: submitted, started, one per point, terminal.
    names = [event["event"] for event in job.events_since(0)]
    assert names[0] == "submitted"
    assert names[1] == "started"
    assert names.count("point") == 3
    assert names[-1] == "done"
    assert snapshot["started"] is not None
    assert snapshot["finished"] >= snapshot["started"]


def test_cancel_mid_sweep_keeps_completed_points(
    tmp_path, result_payload, manager_factory
):
    # Cold seeds: every point must actually simulate, giving the cancel
    # request a real between-points window to land in.
    spec = tiny_spec(seeds=(10, 11, 12, 13, 14, 15))
    store = ResultStore(str(tmp_path / "store"))
    manager = manager_factory(store)

    job = manager.submit_spec(spec)
    wait_for_point_event(job)
    manager.cancel(job.id)
    snapshot = wait_terminal(job)

    assert snapshot["state"] == JobState.CANCELLED.value
    completed = snapshot["progress"]["completed"]
    assert 0 < completed < 6
    # Between-points contract: exactly the completed points were
    # persisted — nothing lost, nothing after the cancel started.
    assert len(ResultStore(store.directory)) == completed
    assert job.events_since(0)[-1]["event"] == "cancelled"


def test_cancel_queued_job_never_runs(tmp_path, result_payload, manager_factory):
    spec = tiny_spec(seeds=(20, 21, 22))
    store = ResultStore(str(tmp_path / "store"))
    manager = manager_factory(store)

    # workers=1: the first job occupies the only worker, the second sits
    # in the queue where cancellation is immediate.
    running = manager.submit_spec(spec)
    queued = manager.submit_spec(tiny_spec(seeds=(30, 31)))
    cancelled = manager.cancel(queued.id)

    assert cancelled.snapshot()["state"] == JobState.CANCELLED.value
    assert cancelled.snapshot()["progress"]["completed"] == 0
    manager.cancel(running.id)
    wait_terminal(running)


def test_failed_job_isolates_fault_and_pool_survives(
    tmp_path, result_payload, manager_factory, monkeypatch
):
    spec = tiny_spec(seeds=(0, 1))
    store = warm_store(tmp_path, result_payload, spec)
    manager = manager_factory(store)

    class ExplodingRunner:
        def __init__(self, **kwargs):
            pass

        def run(self, spec):
            raise RuntimeError("simulated engine fault")

    import repro.serve.jobs as jobs_module
    monkeypatch.setattr(jobs_module, "SweepRunner", ExplodingRunner)
    failed = manager.submit_spec(spec)
    snapshot = wait_terminal(failed)
    assert snapshot["state"] == JobState.FAILED.value
    assert "RuntimeError: simulated engine fault" in snapshot["error"]

    # The worker thread survived: the next (warm) job runs clean.
    monkeypatch.undo()
    good = manager.submit_spec(spec)
    snapshot = wait_terminal(good)
    assert snapshot["state"] == JobState.DONE.value
    assert snapshot["progress"]["simulated"] == 0


def test_journal_survives_restart_with_restored_entries(
    tmp_path, result_payload, manager_factory
):
    spec = tiny_spec(seeds=(0, 1))
    store = warm_store(tmp_path, result_payload, spec)
    journal = str(tmp_path / "journal.jsonl")

    first = manager_factory(store, journal_path=journal)
    job = first.submit_spec(spec)
    wait_terminal(job)
    history = first.history()
    assert len(history) == 1
    assert history[0]["job"] == job.id
    assert history[0]["state"] == "done"
    assert history[0]["restored"] is False
    assert history[0]["served_from_store"] == 2

    # A restarted server (new run id) sees the old job, marked restored.
    second = manager_factory(store, journal_path=journal)
    restored = {entry["job"]: entry for entry in second.history()}
    assert restored[job.id]["restored"] is True
    assert restored[job.id]["state"] == "done"


def test_unwritable_journal_degrades_without_hurting_jobs(
    tmp_path, result_payload, manager_factory, capfd
):
    """Journal loss costs restart visibility, never the job itself.

    A directory sitting where the journal file should be makes every
    append raise ``IsADirectoryError``; the manager must warn once,
    keep running jobs to completion, and serve an empty history.
    (A 0444 file is no obstacle to root, which CI runs as — a directory
    blocks ``open(..., "a")`` for every uid.)
    """
    spec = tiny_spec(seeds=(0, 1))
    store = warm_store(tmp_path, result_payload, spec)
    journal = tmp_path / "journal.jsonl"
    journal.mkdir()

    manager = manager_factory(store, journal_path=str(journal))
    first = wait_terminal(manager.submit_spec(spec))
    assert first["state"] == JobState.DONE.value
    second = wait_terminal(manager.submit_spec(spec))
    assert second["state"] == JobState.DONE.value

    assert manager.history() == []
    warnings = [
        line for line in capfd.readouterr().err.splitlines()
        if "job journal disabled" in line
    ]
    assert len(warnings) == 1  # warned once, then silently degraded


def test_cancel_racing_completion_journals_one_terminal_record(
    tmp_path, result_payload, manager_factory
):
    """finish() is first-transition-wins — and so is the journal.

    ``shutdown`` cancels a running job at the same time as the worker
    thread is finishing it; whichever side wins, the journal must hold
    exactly one terminal record per job (the loser's ``finish`` returns
    False and must not journal again).
    """
    spec = tiny_spec(seeds=(40, 41, 42, 43))  # cold: actually simulates
    store = ResultStore(str(tmp_path / "store"))
    journal = str(tmp_path / "journal.jsonl")
    manager = manager_factory(store, journal_path=journal)

    job = manager.submit_spec(spec)
    wait_for_point_event(job)
    manager.shutdown(wait=False)  # cancel races the running worker
    manager.shutdown(wait=True)   # join the pool; finish() no-ops now

    assert job.snapshot()["state"] in ("done", "cancelled")
    with open(journal) as handle:
        records = [json.loads(line) for line in handle]
    terminal = [
        record for record in records
        if record["job"] == job.id
        and record["event"] in ("done", "failed", "cancelled")
    ]
    assert len(terminal) == 1, terminal
    assert terminal[0]["event"] == job.snapshot()["state"]


def test_unknown_figure_raises_before_enqueue(
    tmp_path, result_payload, manager_factory
):
    store = warm_store(tmp_path, result_payload, tiny_spec())
    manager = manager_factory(store)
    with pytest.raises(KeyError):
        manager.submit_figure("fig99_not_a_figure")
    assert manager.list() == []


def test_spec_payload_plugins_rejected_unless_opted_in():
    payload = tiny_spec().to_dict()
    payload["plugins"] = ["examples/custom_design.py"]
    with pytest.raises(ValueError, match="plugins"):
        spec_from_payload(payload)
    spec = spec_from_payload(payload, allow_plugins=True)
    assert spec.plugins == ("examples/custom_design.py",)


def test_spec_payload_must_be_object():
    with pytest.raises(ValueError, match="JSON object"):
        spec_from_payload(["not", "a", "spec"])
