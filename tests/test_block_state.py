"""Unit and property tests for the Table 2 block-state encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.core.block_state import BlockState, PageBlockBits


class TestBlockState:
    def test_table2_encoding(self):
        assert BlockState.NOT_PRESENT.value == (0, 0)
        assert BlockState.PREFETCHED.value == (0, 1)
        assert BlockState.DEMANDED_CLEAN.value == (1, 0)
        assert BlockState.DEMANDED_DIRTY.value == (1, 1)

    def test_presence(self):
        assert not BlockState.NOT_PRESENT.is_present
        assert BlockState.PREFETCHED.is_present
        assert BlockState.DEMANDED_CLEAN.is_present
        assert BlockState.DEMANDED_DIRTY.is_present

    def test_demanded_is_high_bit(self):
        assert not BlockState.NOT_PRESENT.is_demanded
        assert not BlockState.PREFETCHED.is_demanded
        assert BlockState.DEMANDED_CLEAN.is_demanded
        assert BlockState.DEMANDED_DIRTY.is_demanded

    def test_dirty_only_when_demanded(self):
        assert BlockState.DEMANDED_DIRTY.is_dirty
        assert not BlockState.DEMANDED_CLEAN.is_dirty
        assert not BlockState.PREFETCHED.is_dirty


class TestPageBlockBits:
    def test_initially_not_present(self):
        bits = PageBlockBits(32)
        for i in range(32):
            assert bits.state_of(i) is BlockState.NOT_PRESENT

    def test_install_prefetched(self):
        bits = PageBlockBits(32)
        bits.install_prefetched(0b1010)
        assert bits.state_of(1) is BlockState.PREFETCHED
        assert bits.state_of(3) is BlockState.PREFETCHED
        assert bits.state_of(0) is BlockState.NOT_PRESENT

    def test_demand_clean(self):
        bits = PageBlockBits(32)
        bits.install_prefetched(0b10)
        bits.mark_demanded(1, dirty=False)
        assert bits.state_of(1) is BlockState.DEMANDED_CLEAN

    def test_demand_dirty(self):
        bits = PageBlockBits(32)
        bits.mark_demanded(4, dirty=True)
        assert bits.state_of(4) is BlockState.DEMANDED_DIRTY

    def test_dirty_sticky_across_clean_redemand(self):
        bits = PageBlockBits(32)
        bits.mark_demanded(2, dirty=True)
        bits.mark_demanded(2, dirty=False)
        assert bits.state_of(2) is BlockState.DEMANDED_DIRTY

    def test_set_state_roundtrip(self):
        bits = PageBlockBits(32)
        for state in BlockState:
            bits.set_state(7, state)
            assert bits.state_of(7) is state

    def test_masks(self):
        bits = PageBlockBits(32)
        bits.install_prefetched(0b111)
        bits.mark_demanded(0, dirty=False)
        bits.mark_demanded(1, dirty=True)
        assert bits.present_mask == 0b111
        assert bits.demanded_mask == 0b011
        assert bits.dirty_mask == 0b010
        assert bits.prefetched_unused_mask == 0b100

    def test_counts(self):
        bits = PageBlockBits(32)
        bits.install_prefetched(0b1111)
        bits.mark_demanded(0, dirty=True)
        bits.mark_demanded(1, dirty=False)
        assert bits.count_present() == 4
        assert bits.count_demanded() == 2
        assert bits.count_dirty() == 1

    def test_out_of_range_rejected(self):
        bits = PageBlockBits(32)
        with pytest.raises(IndexError):
            bits.state_of(32)
        with pytest.raises(IndexError):
            bits.mark_demanded(-1, dirty=False)

    def test_bad_mask_rejected(self):
        bits = PageBlockBits(4)
        with pytest.raises(ValueError):
            bits.install_prefetched(1 << 4)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            PageBlockBits(0)


@given(
    st.lists(
        st.tuples(st.integers(0, 31), st.booleans()),
        max_size=100,
    ),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_invariants_hold_under_any_sequence(demands, prefetch_mask):
    """Table 2 invariants: dirty => demanded => present; footprint = D bit."""
    bits = PageBlockBits(32)
    bits.install_prefetched(prefetch_mask)
    for index, dirty in demands:
        bits.mark_demanded(index, dirty)
    assert bits.dirty_mask & ~bits.demanded_mask == 0
    assert bits.demanded_mask & ~bits.present_mask == 0
    demanded_indices = {i for i, _ in demands}
    assert bits.demanded_mask == sum(1 << i for i in demanded_indices)
