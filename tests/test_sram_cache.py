"""Unit and property tests for the generic set-associative structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.sram_cache import SetAssociativeCache


def direct_indexed(num_sets=4, associativity=2):
    return SetAssociativeCache(
        num_sets=num_sets,
        associativity=associativity,
        set_index=lambda key: key % num_sets,
    )


class TestBasics:
    def test_empty_lookup(self):
        assert direct_indexed().lookup(3) is None

    def test_insert_then_lookup(self):
        cache = direct_indexed()
        cache.insert(3, "x")
        assert cache.lookup(3) == "x"
        assert 3 in cache

    def test_reinsert_replaces_payload(self):
        cache = direct_indexed()
        cache.insert(3, "x")
        assert cache.insert(3, "y") is None
        assert cache.lookup(3) == "y"
        assert len(cache) == 1

    def test_capacity(self):
        assert direct_indexed(4, 2).capacity == 8

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=0, associativity=1)
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=1, associativity=0)


class TestEviction:
    def test_lru_eviction_within_set(self):
        cache = direct_indexed(num_sets=1, associativity=2)
        cache.insert(0, "a")
        cache.insert(1, "b")
        eviction = cache.insert(2, "c")
        assert eviction is not None
        assert eviction.key == 0
        assert eviction.payload == "a"

    def test_touch_changes_victim(self):
        cache = direct_indexed(num_sets=1, associativity=2)
        cache.insert(0, "a")
        cache.insert(1, "b")
        cache.lookup(0)
        eviction = cache.insert(2, "c")
        assert eviction.key == 1

    def test_lookup_without_touch(self):
        cache = direct_indexed(num_sets=1, associativity=2)
        cache.insert(0, "a")
        cache.insert(1, "b")
        cache.lookup(0, touch=False)
        eviction = cache.insert(2, "c")
        assert eviction.key == 0

    def test_sets_are_independent(self):
        cache = direct_indexed(num_sets=2, associativity=1)
        cache.insert(0, "even")
        assert cache.insert(1, "odd") is None
        eviction = cache.insert(2, "even2")
        assert eviction.key == 0

    def test_victim_candidate_peek(self):
        cache = direct_indexed(num_sets=1, associativity=1)
        cache.insert(0, "a")
        candidate = cache.victim_candidate(1)
        assert candidate == (0, "a")
        # Peeking does not evict.
        assert cache.lookup(0, touch=False) == "a"

    def test_victim_candidate_none_when_room(self):
        cache = direct_indexed(num_sets=1, associativity=2)
        cache.insert(0, "a")
        assert cache.victim_candidate(1) is None

    def test_victim_candidate_none_when_resident(self):
        cache = direct_indexed(num_sets=1, associativity=1)
        cache.insert(0, "a")
        assert cache.victim_candidate(0) is None


class TestInvalidate:
    def test_invalidate_returns_payload(self):
        cache = direct_indexed()
        cache.insert(3, "x")
        assert cache.invalidate(3) == "x"
        assert cache.lookup(3) is None

    def test_invalidate_missing_returns_none(self):
        assert direct_indexed().invalidate(3) is None

    def test_invalidate_frees_way(self):
        cache = direct_indexed(num_sets=1, associativity=1)
        cache.insert(0, "a")
        cache.invalidate(0)
        assert cache.insert(1, "b") is None


class TestIteration:
    def test_items(self):
        cache = direct_indexed()
        cache.insert(1, "a")
        cache.insert(2, "b")
        assert dict(cache.items()) == {1: "a", 2: "b"}

    def test_set_occupancy(self):
        cache = direct_indexed(num_sets=2, associativity=4)
        cache.insert(0, "a")
        cache.insert(2, "b")
        cache.insert(1, "c")
        assert cache.set_occupancy(0) == 2
        assert cache.set_occupancy(1) == 1

    def test_set_occupancy_out_of_range(self):
        with pytest.raises(IndexError):
            direct_indexed().set_occupancy(99)


class TestBadSetIndex:
    def test_out_of_range_index_rejected(self):
        cache = SetAssociativeCache(num_sets=2, associativity=1, set_index=lambda k: 5)
        with pytest.raises(ValueError):
            cache.insert(0, "x")


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "lookup", "invalidate"]), st.integers(0, 30)),
        max_size=300,
    )
)
def test_occupancy_invariants(operations):
    """Occupancy never exceeds capacity; sets never exceed associativity."""
    cache = SetAssociativeCache(
        num_sets=4, associativity=3, set_index=lambda k: k % 4
    )
    resident = set()
    for op, key in operations:
        if op == "insert":
            eviction = cache.insert(key, key * 10)
            resident.add(key)
            if eviction is not None:
                resident.discard(eviction.key)
        elif op == "lookup":
            value = cache.lookup(key)
            assert (value is not None) == (key in resident)
        else:
            cache.invalidate(key)
            resident.discard(key)
        assert len(cache) == len(resident)
        for set_id in range(4):
            assert cache.set_occupancy(set_id) <= 3
