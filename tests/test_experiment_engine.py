"""Tests for the experiment engine: spec, runner, store."""

import json

import pytest

import repro.exp.runner as runner_module
from repro.exp import (
    ExperimentPoint,
    ExperimentSpec,
    ResultStore,
    SweepRunner,
    default_requests,
    freeze_kwargs,
    run_point,
)
from repro.sim.simulator import SimulationResult, quick_run

N = 3_000  # tiny traces: these tests exercise plumbing, not the paper


def small_spec(**overrides):
    axes = dict(
        workloads="web_search",
        designs=("page", "baseline"),
        capacities_mb=(64, 256),
        num_requests=N,
    )
    axes.update(overrides)
    return ExperimentSpec(**axes)


class TestExperimentPoint:
    def test_baseline_capacity_normalised(self):
        a = ExperimentPoint(workload="web_search", design="baseline", capacity_mb=64)
        b = ExperimentPoint(workload="web_search", design="baseline", capacity_mb=512)
        assert a == b
        assert a.key() == b.key()
        assert a.capacity_mb == 0

    def test_default_spelled_out_shares_key(self):
        plain = ExperimentPoint(workload="web_search", capacity_mb=256)
        explicit = ExperimentPoint(
            workload="web_search", capacity_mb=256,
            cache_kwargs={"singleton_optimization": True},
        )
        assert plain != explicit
        assert plain.key() == explicit.key()

    def test_key_distinguishes_configs(self):
        base = ExperimentPoint(workload="web_search", capacity_mb=256)
        keys = {
            base.key(),
            ExperimentPoint(workload="mapreduce", capacity_mb=256).key(),
            ExperimentPoint(workload="web_search", capacity_mb=128).key(),
            ExperimentPoint(workload="web_search", capacity_mb=256, seed=1).key(),
            ExperimentPoint(workload="web_search", capacity_mb=256,
                            cache_kwargs={"fht_entries": 64}).key(),
        }
        assert len(keys) == 5

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            ExperimentPoint(workload="web_search", design="bogus")

    def test_capacity_aware_default_requests(self):
        point = ExperimentPoint(workload="web_search", capacity_mb=512)
        assert point.resolved_requests == default_requests(512, 256)
        assert default_requests(512, 256) > default_requests(64, 256) == 120_000

    def test_cache_kwargs_normalised(self):
        a = ExperimentPoint(workload="web_search",
                            cache_kwargs=(("b", 2), ("a", 1)))
        b = ExperimentPoint(workload="web_search", cache_kwargs={"a": 1, "b": 2})
        assert a == b
        assert freeze_kwargs({"b": 2, "a": 1}) == (("a", 1), ("b", 2))


class TestExperimentSpec:
    def test_grid_size_and_dedup(self):
        # 1 workload x (2 page points + 1 deduped baseline)
        assert len(small_spec()) == 3

    def test_scalar_axes_accepted(self):
        spec = ExperimentSpec(workloads="web_search", designs="page",
                              capacities_mb=64, seeds=0, page_sizes=2048)
        assert len(spec) == 1

    def test_points_deterministic_order(self):
        assert small_spec().points() == small_spec().points()

    def test_spec_hashable(self):
        assert hash(small_spec()) == hash(small_spec())

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(workloads=(), designs=("page",))


class TestResultSerialization:
    def test_round_trip_through_json(self):
        result = quick_run("web_search", design="footprint", capacity_mb=64,
                           num_requests=N)
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result

    def test_round_trip_preserves_optionals(self):
        result = quick_run("web_search", design="page", capacity_mb=64,
                           num_requests=N)
        assert result.predictor_coverage is None
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored.predictor_coverage is None
        assert restored == result


class TestSweepRunner:
    def test_serial_and_parallel_identical(self):
        spec = small_spec()
        serial = SweepRunner(store=None, jobs=1).run(spec)
        parallel = SweepRunner(store=None, jobs=4).run(spec)
        assert len(serial) == len(parallel) == 3
        for point in spec:
            assert serial[point].to_dict() == parallel[point].to_dict()

    def test_second_run_entirely_from_store(self, tmp_path, monkeypatch):
        spec = small_spec()
        first = SweepRunner(store=ResultStore(str(tmp_path))).run(spec)
        assert first.misses == len(spec) and first.hits == 0

        # A fresh store instance (new process, effectively) must serve every
        # point without invoking the simulator at all.
        def explode(point):
            raise AssertionError(f"simulated {point.label()} despite cache")

        monkeypatch.setattr(runner_module, "run_point", explode)
        second = SweepRunner(store=ResultStore(str(tmp_path))).run(spec)
        assert second.hits == len(spec) and second.misses == 0
        for point in spec:
            assert second[point] == first[point]

    def test_no_cache_resimulates(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path))
        SweepRunner(store=store).run(spec)
        again = SweepRunner(store=ResultStore(str(tmp_path)), use_cache=False).run(spec)
        assert again.hits == 0 and again.misses == len(spec)

    def test_key_duplicates_simulated_once(self, monkeypatch):
        plain = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        explicit = ExperimentPoint(workload="web_search", design="page",
                                   capacity_mb=64, num_requests=N,
                                   cache_kwargs={"associativity": 16})
        calls = []
        real = runner_module.run_point

        def counting(point):
            calls.append(point)
            return real(point)

        monkeypatch.setattr(runner_module, "run_point", counting)
        result = SweepRunner(store=None).run([plain, explicit])
        assert len(calls) == 1
        assert result[plain] == result[explicit]
        # The filled duplicate is neither a store hit nor a simulation.
        assert result.hits == 0
        assert result.misses == 1

    def test_progress_reported_per_point(self):
        ticks = []
        SweepRunner(store=None, progress=ticks.append).run(small_spec())
        assert [t.completed for t in ticks] == [1, 2, 3]
        assert all(t.total == 3 for t in ticks)
        assert not any(t.cached for t in ticks)

    def test_run_one_uses_store(self, tmp_path):
        point = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        store = ResultStore(str(tmp_path))
        first = SweepRunner(store=store).run_one(point)
        assert store.get(point) == first
        assert SweepRunner(store=ResultStore(str(tmp_path))).run_one(point) == first

    def test_baseline_stored_capacity_independently(self, tmp_path):
        store = ResultStore(str(tmp_path))
        runner = SweepRunner(store=store)
        at_64 = runner.run_one(
            ExperimentPoint(workload="web_search", design="baseline",
                            capacity_mb=64, num_requests=N)
        )
        hit = store.get(
            ExperimentPoint(workload="web_search", design="baseline",
                            capacity_mb=512, num_requests=N)
        )
        assert hit == at_64

    def test_sweep_result_get_filters(self):
        sweep = SweepRunner(store=None).run(small_spec())
        page = sweep.get(design="page", capacity_mb=64)
        assert page.design == "page"
        assert sweep.get(design="baseline").design == "baseline"
        with pytest.raises(KeyError):
            sweep.get(design="page")  # ambiguous: two capacities
        with pytest.raises(KeyError):
            sweep.get(design="page", capacity_mb=999)  # no match


class TestResultStore:
    def test_persists_across_instances(self, tmp_path):
        point = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        result = run_point(point)
        ResultStore(str(tmp_path)).put(point, result)
        reloaded = ResultStore(str(tmp_path))
        assert point in reloaded
        assert reloaded.get(point) == result
        assert len(reloaded) == 1

    def test_corrupt_lines_skipped(self, tmp_path):
        point = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        result = run_point(point)
        store = ResultStore(str(tmp_path))
        store.put(point, result)
        with open(store.path, "a") as handle:
            handle.write("{torn record\n")
        reloaded = ResultStore(str(tmp_path))
        assert reloaded.get(point) == result

    def test_missing_point_returns_none(self, tmp_path):
        store = ResultStore(str(tmp_path))
        point = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        assert store.get(point) is None
        assert point not in store
