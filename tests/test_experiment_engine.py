"""Tests for the experiment engine: spec, runner, store."""

import json

import pytest

import repro.exp.runner as runner_module
import repro.exp.spec as spec_module
from repro.exp import (
    ENGINE_VERSION,
    ExperimentPoint,
    ExperimentSpec,
    ResultStore,
    SweepRunner,
    default_requests,
    freeze_kwargs,
    split_timing_kwargs,
    run_point,
)
from repro.sim.config import TimingConfig
from repro.sim.simulator import SimulationResult, quick_run

N = 3_000  # tiny traces: these tests exercise plumbing, not the paper


def small_spec(**overrides):
    axes = dict(
        workloads="web_search",
        designs=("page", "baseline"),
        capacities_mb=(64, 256),
        num_requests=N,
    )
    axes.update(overrides)
    return ExperimentSpec(**axes)


class TestExperimentPoint:
    def test_baseline_capacity_normalised(self):
        a = ExperimentPoint(workload="web_search", design="baseline", capacity_mb=64)
        b = ExperimentPoint(workload="web_search", design="baseline", capacity_mb=512)
        assert a == b
        assert a.key() == b.key()
        assert a.capacity_mb == 0

    def test_default_spelled_out_shares_key(self):
        plain = ExperimentPoint(workload="web_search", capacity_mb=256)
        explicit = ExperimentPoint(
            workload="web_search", capacity_mb=256,
            cache_kwargs={"singleton_optimization": True},
        )
        assert plain != explicit
        assert plain.key() == explicit.key()

    def test_key_distinguishes_configs(self):
        base = ExperimentPoint(workload="web_search", capacity_mb=256)
        keys = {
            base.key(),
            ExperimentPoint(workload="mapreduce", capacity_mb=256).key(),
            ExperimentPoint(workload="web_search", capacity_mb=128).key(),
            ExperimentPoint(workload="web_search", capacity_mb=256, seed=1).key(),
            ExperimentPoint(workload="web_search", capacity_mb=256,
                            cache_kwargs={"fht_entries": 64}).key(),
        }
        assert len(keys) == 5

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            ExperimentPoint(workload="web_search", design="bogus")

    def test_capacity_aware_default_requests(self):
        point = ExperimentPoint(workload="web_search", capacity_mb=512)
        assert point.resolved_requests == default_requests(512, 256)
        assert default_requests(512, 256) > default_requests(64, 256) == 120_000

    def test_cache_kwargs_normalised(self):
        a = ExperimentPoint(workload="web_search",
                            cache_kwargs=(("b", 2), ("a", 1)))
        b = ExperimentPoint(workload="web_search", cache_kwargs={"a": 1, "b": 2})
        assert a == b
        assert freeze_kwargs({"b": 2, "a": 1}) == (("a", 1), ("b", 2))

    def test_unknown_system_override_rejected(self):
        with pytest.raises(ValueError, match="SystemConfig"):
            ExperimentPoint(workload="web_search",
                            system_kwargs={"warp_drive": True})

    def test_unknown_timing_override_rejected(self):
        with pytest.raises(ValueError, match="timing override"):
            ExperimentPoint(workload="web_search",
                            timing_kwargs={"latency_scale": 0.5})  # missing role

    def test_timing_kwargs_reach_the_config(self):
        point = ExperimentPoint(
            workload="web_search", design="ideal",
            timing_kwargs={"stacked_latency_scale": 0.5,
                           "offchip_preset": "ddr3_3200"},
        )
        config = point.config()
        assert config.stacked_timing == TimingConfig(latency_scale=0.5)
        assert config.offchip_timing == TimingConfig(preset="ddr3_3200")

    def test_system_kwargs_reach_the_config(self):
        point = ExperimentPoint(workload="web_search", design="baseline",
                                system_kwargs={"extra_l2_bytes": 16384})
        assert point.config().system.extra_l2_bytes == 16384

    def test_split_timing_kwargs(self):
        stacked, offchip = split_timing_kwargs({"stacked_latency_scale": 0.5})
        assert stacked == TimingConfig(latency_scale=0.5)
        assert offchip == TimingConfig()


class TestStoreKeyCoversEveryAxis:
    """Regression for the pre-redesign blind spot: timing and system
    variants used to be passed out-of-band to ``build_system`` and were
    invisible to the store hash — a Fig. 1 half-latency run and a normal
    run collided under one key."""

    def test_stacked_timing_changes_the_key(self):
        normal = ExperimentPoint(workload="web_search", design="ideal")
        halved = ExperimentPoint(workload="web_search", design="ideal",
                                 timing_kwargs={"stacked_latency_scale": 0.5})
        assert normal.key() != halved.key()

    def test_offchip_timing_changes_the_key(self):
        normal = ExperimentPoint(workload="web_search")
        reclocked = ExperimentPoint(workload="web_search",
                                    timing_kwargs={"offchip_bus_mhz": 1600})
        assert normal.key() != reclocked.key()

    def test_system_override_changes_the_key(self):
        plain = ExperimentPoint(workload="web_search", design="baseline")
        enhanced = ExperimentPoint(workload="web_search", design="baseline",
                                   system_kwargs={"extra_l2_bytes": 16384})
        assert plain.key() != enhanced.key()

    def test_default_variant_spelled_out_shares_key(self):
        plain = ExperimentPoint(workload="web_search")
        explicit = ExperimentPoint(
            workload="web_search",
            timing_kwargs={"stacked_latency_scale": 1.0},
            system_kwargs={"num_cores": 16},
        )
        assert plain != explicit
        assert plain.key() == explicit.key()

    def test_preset_spelling_of_default_device_shares_key(self):
        # The stacked role's default device *is* ddr3_3200: naming it
        # explicitly must not fork the store entry.
        plain = ExperimentPoint(workload="web_search")
        named = ExperimentPoint(workload="web_search",
                                timing_kwargs={"stacked_preset": "ddr3_3200"})
        assert plain.key() == named.key()

    def test_redefined_preset_changes_the_key(self):
        # Keys hash the *resolved* device parameters, so a preset whose
        # definition changed between runs cannot serve stale results.
        import dataclasses

        from repro.dram.timing import OFF_CHIP_DDR3_1600, TIMING_PRESETS

        try:
            TIMING_PRESETS["test_hbm"] = OFF_CHIP_DDR3_1600
            before = ExperimentPoint(workload="web_search",
                                     timing_kwargs={"stacked_preset": "test_hbm"}).key()
            TIMING_PRESETS["test_hbm"] = dataclasses.replace(
                OFF_CHIP_DDR3_1600, t_cas=4
            )
            after = ExperimentPoint(workload="web_search",
                                    timing_kwargs={"stacked_preset": "test_hbm"}).key()
        finally:
            TIMING_PRESETS.pop("test_hbm", None)
        assert before != after

    def test_stacked_timing_degenerate_for_stackless_designs(self):
        # The baseline never builds a stacked controller, so a Fig. 1
        # grid with a baseline bar must not fork it per stacked variant.
        plain = ExperimentPoint(workload="web_search", design="baseline")
        varied = ExperimentPoint(workload="web_search", design="baseline",
                                 timing_kwargs={"stacked_latency_scale": 0.5})
        assert plain.key() == varied.key()
        # ... while off-chip timing (which the baseline does use) forks.
        offchip = ExperimentPoint(workload="web_search", design="baseline",
                                  timing_kwargs={"offchip_latency_scale": 0.5})
        assert plain.key() != offchip.key()

    def test_unknown_preset_fails_at_point_construction(self):
        with pytest.raises(ValueError, match="unknown timing preset"):
            ExperimentPoint(workload="web_search",
                            timing_kwargs={"stacked_preset": "ddr9_9999"})

    def test_reregistered_design_traits_change_the_key(self):
        # A custom design re-registered with different construction
        # traits (e.g. its interleaving) must not alias the old results.
        from repro.caches.registry import register_design, unregister_design

        def build(config, stacked, offchip):  # pragma: no cover
            raise AssertionError("never built: keys only")

        keys = []
        for interleaving in ("page", "block"):
            register_design("test_keyed", page_organised=True,
                            stacked_interleaving=interleaving)(build)
            try:
                keys.append(ExperimentPoint(workload="web_search",
                                            design="test_keyed").key())
            finally:
                unregister_design("test_keyed")
        assert keys[0] != keys[1]

    def test_device_name_is_cosmetic_in_the_key(self):
        import dataclasses

        from repro.dram.timing import STACKED_DDR3_3200, TIMING_PRESETS

        try:
            # Same numbers as the stacked default, different display name.
            TIMING_PRESETS["test_alias"] = dataclasses.replace(
                STACKED_DDR3_3200, name="alias"
            )
            aliased = ExperimentPoint(workload="web_search",
                                      timing_kwargs={"stacked_preset": "test_alias"}).key()
        finally:
            TIMING_PRESETS.pop("test_alias", None)
        assert aliased == ExperimentPoint(workload="web_search").key()

    def test_engine_version_bump_invalidates(self, monkeypatch):
        point = ExperimentPoint(workload="web_search")
        new_key = point.key()
        monkeypatch.setattr(spec_module, "ENGINE_VERSION", "1")
        old_key = ExperimentPoint(workload="web_search").key()
        assert new_key != old_key

    def test_redesign_bumped_engine_version(self):
        # The redesign changed what the resolved config contains, so the
        # pre-redesign store ("1") must be invalid wholesale.
        assert ENGINE_VERSION == "2"

    def test_variant_points_store_distinctly(self, tmp_path):
        store = ResultStore(str(tmp_path))
        runner = SweepRunner(store=store)
        normal = ExperimentPoint(workload="web_search", design="ideal",
                                 capacity_mb=64, num_requests=N)
        halved = ExperimentPoint(workload="web_search", design="ideal",
                                 capacity_mb=64, num_requests=N,
                                 timing_kwargs={"stacked_latency_scale": 0.5})
        fast = runner.run_one(halved)
        slow = runner.run_one(normal)
        assert len(store) == 2
        reloaded = ResultStore(str(tmp_path))
        assert reloaded.get(normal) == slow
        assert reloaded.get(halved) == fast
        assert fast.aggregate_ipc > slow.aggregate_ipc


class TestExperimentSpec:
    def test_grid_size_and_dedup(self):
        # 1 workload x (2 page points + 1 deduped baseline)
        assert len(small_spec()) == 3

    def test_scalar_axes_accepted(self):
        spec = ExperimentSpec(workloads="web_search", designs="page",
                              capacities_mb=64, seeds=0, page_sizes=2048)
        assert len(spec) == 1

    def test_points_deterministic_order(self):
        assert small_spec().points() == small_spec().points()

    def test_spec_hashable(self):
        assert hash(small_spec()) == hash(small_spec())

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(workloads=(), designs=("page",))

    def test_variant_axes_cross_product(self):
        spec = ExperimentSpec(
            workloads="web_search", designs="ideal", capacities_mb=64,
            timing_variants=({}, {"stacked_latency_scale": 0.5}),
            system_variants=({}, {"stacked_channels": 8}),
        )
        assert len(spec) == 4
        labels = {point.label() for point in spec}
        assert "web_search/ideal/64MB stacked_channels=8 stacked_latency_scale=0.5" in labels

    def test_single_variant_dict_accepted(self):
        spec = ExperimentSpec(workloads="web_search", designs="baseline",
                              system_variants={"extra_l2_bytes": 16384})
        (point,) = spec.points()
        assert point.system_kwargs == (("extra_l2_bytes", 16384),)

    def test_json_round_trip(self):
        spec = ExperimentSpec(
            workloads=("web_search", "mapreduce"),
            designs=("page", "footprint"),
            capacities_mb=(64, 256),
            num_requests=N,
            cache_variants=({}, {"fht_entries": 1024}),
            timing_variants=({}, {"stacked_latency_scale": 0.5}),
            system_variants=({}, {"extra_l2_bytes": 16384}),
        )
        again = ExperimentSpec.from_json(spec.to_json())
        assert again == spec
        assert again.points() == spec.points()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="designz"):
            ExperimentSpec.from_dict({"designz": ["page"]})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            ExperimentSpec.from_json("[1, 2]")
        with pytest.raises(ValueError, match="JSON"):
            ExperimentSpec.from_json("{nope")


class TestResultSerialization:
    def test_round_trip_through_json(self):
        result = quick_run("web_search", design="footprint", capacity_mb=64,
                           num_requests=N)
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result

    def test_round_trip_preserves_optionals(self):
        result = quick_run("web_search", design="page", capacity_mb=64,
                           num_requests=N)
        assert result.predictor_coverage is None
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored.predictor_coverage is None
        assert restored == result


class TestSweepRunner:
    def test_serial_and_parallel_identical(self):
        spec = small_spec()
        serial = SweepRunner(store=None, jobs=1).run(spec)
        parallel = SweepRunner(store=None, jobs=4).run(spec)
        assert len(serial) == len(parallel) == 3
        for point in spec:
            assert serial[point].to_dict() == parallel[point].to_dict()

    def test_second_run_entirely_from_store(self, tmp_path, monkeypatch):
        spec = small_spec()
        first = SweepRunner(store=ResultStore(str(tmp_path))).run(spec)
        assert first.misses == len(spec) and first.hits == 0

        # A fresh store instance (new process, effectively) must serve every
        # point without invoking the simulator at all.
        def explode(point):
            raise AssertionError(f"simulated {point.label()} despite cache")

        monkeypatch.setattr(runner_module, "run_point", explode)
        second = SweepRunner(store=ResultStore(str(tmp_path))).run(spec)
        assert second.hits == len(spec) and second.misses == 0
        for point in spec:
            assert second[point] == first[point]

    def test_no_cache_resimulates(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path))
        SweepRunner(store=store).run(spec)
        again = SweepRunner(store=ResultStore(str(tmp_path)), use_cache=False).run(spec)
        assert again.hits == 0 and again.misses == len(spec)

    def test_key_duplicates_simulated_once(self, monkeypatch):
        plain = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        explicit = ExperimentPoint(workload="web_search", design="page",
                                   capacity_mb=64, num_requests=N,
                                   cache_kwargs={"associativity": 16})
        calls = []
        real = runner_module.run_point

        def counting(point):
            calls.append(point)
            return real(point)

        monkeypatch.setattr(runner_module, "run_point", counting)
        result = SweepRunner(store=None).run([plain, explicit])
        assert len(calls) == 1
        assert result[plain] == result[explicit]
        # The filled duplicate is neither a store hit nor a simulation.
        assert result.hits == 0
        assert result.misses == 1

    def test_progress_reported_per_point(self):
        ticks = []
        SweepRunner(store=None, progress=ticks.append).run(small_spec())
        assert [t.completed for t in ticks] == [1, 2, 3]
        assert all(t.total == 3 for t in ticks)
        assert not any(t.cached for t in ticks)

    def test_run_one_uses_store(self, tmp_path):
        point = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        store = ResultStore(str(tmp_path))
        first = SweepRunner(store=store).run_one(point)
        assert store.get(point) == first
        assert SweepRunner(store=ResultStore(str(tmp_path))).run_one(point) == first

    def test_baseline_stored_capacity_independently(self, tmp_path):
        store = ResultStore(str(tmp_path))
        runner = SweepRunner(store=store)
        at_64 = runner.run_one(
            ExperimentPoint(workload="web_search", design="baseline",
                            capacity_mb=64, num_requests=N)
        )
        hit = store.get(
            ExperimentPoint(workload="web_search", design="baseline",
                            capacity_mb=512, num_requests=N)
        )
        assert hit == at_64

    def test_sweep_result_get_filters(self):
        sweep = SweepRunner(store=None).run(small_spec())
        page = sweep.get(design="page", capacity_mb=64)
        assert page.design == "page"
        assert sweep.get(design="baseline").design == "baseline"
        with pytest.raises(KeyError):
            sweep.get(design="page")  # ambiguous: two capacities
        with pytest.raises(KeyError):
            sweep.get(design="page", capacity_mb=999)  # no match

    def test_sweep_result_get_by_variant(self):
        spec = ExperimentSpec(
            workloads="web_search", designs="ideal", capacities_mb=64,
            num_requests=N, timing_variants=({}, {"stacked_latency_scale": 0.5}),
        )
        sweep = SweepRunner(store=None).run(spec)
        fast = sweep.get(stacked_latency_scale=0.5)
        slow = sweep.get(timing_kwargs=())
        assert fast.aggregate_ipc > slow.aggregate_ipc


class TestResultStore:
    def test_persists_across_instances(self, tmp_path):
        point = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        result = run_point(point)
        ResultStore(str(tmp_path)).put(point, result)
        reloaded = ResultStore(str(tmp_path))
        assert point in reloaded
        assert reloaded.get(point) == result
        assert len(reloaded) == 1

    def test_corrupt_lines_skipped(self, tmp_path):
        point = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        result = run_point(point)
        store = ResultStore(str(tmp_path))
        store.put(point, result)
        with open(store.path, "a") as handle:
            handle.write("{torn record\n")
        reloaded = ResultStore(str(tmp_path))
        assert reloaded.get(point) == result

    def test_missing_point_returns_none(self, tmp_path):
        store = ResultStore(str(tmp_path))
        point = ExperimentPoint(workload="web_search", design="page",
                                capacity_mb=64, num_requests=N)
        assert store.get(point) is None
        assert point not in store
