"""Unit tests for the DRAM energy model."""

import pytest

from repro.dram.energy import DramEnergyCounters, DramEnergyModel


class TestModel:
    def test_defaults_non_negative(self):
        model = DramEnergyModel()
        assert model.activate_precharge_nj >= 0
        assert model.read_burst_nj_per_64b >= 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DramEnergyModel(activate_precharge_nj=-1)

    def test_stacked_io_cheaper_than_offchip(self):
        assert (
            DramEnergyModel.stacked().read_burst_nj_per_64b
            < DramEnergyModel.off_chip().read_burst_nj_per_64b
        )

    def test_same_core_array_energy(self):
        assert (
            DramEnergyModel.stacked().activate_precharge_nj
            == DramEnergyModel.off_chip().activate_precharge_nj
        )


class TestCounters:
    def test_activate_energy(self):
        counters = DramEnergyCounters()
        counters.record_row_operations(activates=2, precharges=2)
        assert counters.activate_precharge_nj == pytest.approx(40.0)

    def test_precharges_not_double_counted(self):
        counters = DramEnergyCounters()
        counters.record_row_operations(activates=1, precharges=0)
        only_activate = counters.activate_precharge_nj
        counters.record_row_operations(activates=0, precharges=1)
        assert counters.activate_precharge_nj == only_activate

    def test_read_write_split(self):
        counters = DramEnergyCounters()
        counters.record_read(128)
        counters.record_write(64)
        assert counters.read_nj == pytest.approx(13.0)
        assert counters.write_nj == pytest.approx(7.0)
        assert counters.burst_nj == pytest.approx(20.0)

    def test_total(self):
        counters = DramEnergyCounters()
        counters.record_row_operations(1, 1)
        counters.record_read(64)
        assert counters.total_nj == pytest.approx(26.5)

    def test_negative_rejected(self):
        counters = DramEnergyCounters()
        with pytest.raises(ValueError):
            counters.record_read(-1)
        with pytest.raises(ValueError):
            counters.record_row_operations(-1, 0)

    def test_reset(self):
        counters = DramEnergyCounters()
        counters.record_read(64)
        counters.record_row_operations(1, 1)
        counters.reset()
        assert counters.total_nj == 0.0

    def test_partial_block_prorated(self):
        counters = DramEnergyCounters()
        counters.record_read(32)
        assert counters.read_nj == pytest.approx(6.5 / 2)
