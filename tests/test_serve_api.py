"""End-to-end HTTP API tests over real sockets (builtin frontend).

The builtin ``http.server`` frontend binds an ephemeral port and the
tests drive it with ``urllib`` — the actual wire protocol, no test
doubles.  The final class re-runs the core flows through the FastAPI
adapter (skipped unless the ``repro[serve]`` extra's dependencies are
installed) to pin that both frontends serve identical API semantics.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.exp import ExperimentSpec, ResultStore, SweepRunner
from repro.serve import API_PREFIX, JobManager, SimulationService
from repro.sim.simulator import SimulationResult


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        workloads=("web_search",), designs=("page",),
        capacities_mb=64, num_requests=2000,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture(scope="module")
def result_payload() -> dict:
    runner = SweepRunner(store=None)
    return runner.run_one(tiny_spec().points()[0]).to_dict()


@pytest.fixture()
def server(tmp_path, result_payload, http_stack):
    """(base_url, store) with the spec's seeds 0-3 already warm.

    Built on the shared ``http_stack`` harness from ``conftest.py`` (the
    same stack ``test_distributed.py`` drives), so this suite exercises
    exactly the service composition the other one does — job manager
    plus coordinator over one store, torn down by the fixtures.
    """
    store = ResultStore(str(tmp_path / "store"))
    result = SimulationResult.from_dict(result_payload)
    for point in tiny_spec(seeds=(0, 1, 2, 3)).points():
        store.put(point, result)
    base, _service = http_stack(store_dir=store.directory, workers=1)
    return base, store


def request(base, path, method="GET", payload=None):
    """(status, parsed-or-text body) for one API call."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(
        f"{base}{API_PREFIX}{path}", data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            body = response.read().decode()
            status = response.status
    except urllib.error.HTTPError as error:
        body = error.read().decode()
        status = error.code
    try:
        return status, json.loads(body)
    except json.JSONDecodeError:
        return status, body


def poll_done(base, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, snapshot = request(base, f"/jobs/{job_id}")
        assert status == 200
        if snapshot["state"] in ("done", "failed", "cancelled"):
            return snapshot
        time.sleep(0.05)
    raise AssertionError("job never reached a terminal state")


def test_index_lists_every_route(server):
    base, _ = server
    status, payload = request(base, "")
    assert status == 200
    assert payload["api"] == "v1"
    assert "POST /api/v1/jobs" in payload["routes"]


def test_health_reports_store_and_workers(server):
    base, store = server
    status, payload = request(base, "/health")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["store_records"] == 4
    assert payload["workers"] == 1
    assert payload["coordinator"] == {"runs": 0, "active": 0}


def test_catalog_endpoints(server):
    base, _ = server
    assert "footprint" in request(base, "/designs")[1]["designs"]
    assert "web_search" in request(base, "/workloads")[1]["workloads"]
    figures = request(base, "/figures")[1]["figures"]
    assert any(figure["name"] == "fig01" for figure in figures)


def test_submit_poll_results_csv_roundtrip(server):
    base, _ = server
    spec = tiny_spec(seeds=(0, 1, 2, 3))
    status, submitted = request(base, "/jobs", method="POST",
                                payload=spec.to_dict())
    assert status == 202
    # A fully warm job can finish before the submit response is built,
    # so any state short of failure is legitimate here.
    assert submitted["state"] in ("pending", "running", "done")
    job_id = submitted["id"]

    snapshot = poll_done(base, job_id)
    assert snapshot["state"] == "done"
    assert snapshot["progress"] == {
        "total": 4, "completed": 4, "served_from_store": 4, "simulated": 0,
    }

    status, results = request(base, f"/jobs/{job_id}/results")
    assert status == 200
    assert results["complete"] is True
    assert len(results["points"]) == 4
    assert all(row["served"] for row in results["points"])
    assert results["points"][0]["result"]["miss_ratio"] >= 0

    status, csv_text = request(base, f"/jobs/{job_id}/results?format=csv")
    assert status == 200
    lines = csv_text.strip().splitlines()
    assert lines[0].startswith("workload,design,capacity_mb")
    assert len(lines) == 5  # header + one row per point

    status, listing = request(base, "/jobs")
    assert status == 200
    assert any(job["id"] == job_id for job in listing["jobs"])


def test_event_pages_and_stream(server):
    base, _ = server
    spec = tiny_spec(seeds=(0, 1))
    _, submitted = request(base, "/jobs", method="POST", payload=spec.to_dict())
    job_id = submitted["id"]
    poll_done(base, job_id)

    # Poll mode: one page, then an empty follow-up from the cursor.
    status, page = request(base, f"/jobs/{job_id}/events?stream=0")
    assert status == 200
    names = [event["event"] for event in page["events"]]
    assert names[0] == "submitted"
    assert names[-1] == "done"
    assert names.count("point") == 2
    status, tail = request(
        base, f"/jobs/{job_id}/events?stream=0&since={page['next']}"
    )
    assert tail["events"] == []

    # Stream mode: NDJSON lines ending with the terminal event.
    with urllib.request.urlopen(
        f"{base}{API_PREFIX}/jobs/{job_id}/events", timeout=30
    ) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        events = [json.loads(line) for line in response.read().splitlines()]
    assert [event["event"] for event in events] == names


def test_stream_disconnect_mid_event_leaves_server_healthy(server):
    """A client that hangs up mid-NDJSON-line must not hurt anything.

    The handler thread writing the stream hits ``BrokenPipeError``; the
    job keeps running to completion and the server keeps answering —
    close-delimited streaming means the *client* is the only casualty
    of its own disconnect.
    """
    import http.client
    from urllib.parse import urlsplit

    base, _ = server
    # Cold seeds: the job simulates long enough for the stream to be
    # live (not already terminated) when we cut the connection.
    spec = tiny_spec(seeds=(70, 71, 72, 73, 74, 75))
    _, submitted = request(base, "/jobs", method="POST", payload=spec.to_dict())
    job_id = submitted["id"]

    split = urlsplit(base)
    connection = http.client.HTTPConnection(
        split.hostname, split.port, timeout=30
    )
    try:
        connection.request("GET", f"{API_PREFIX}/jobs/{job_id}/events")
        response = connection.getresponse()
        assert response.status == 200
        # A few raw bytes — mid-event, not even one full NDJSON line.
        assert len(response.read(10)) == 10
    finally:
        connection.close()  # slam the socket mid-stream

    snapshot = poll_done(base, job_id)
    assert snapshot["state"] == "done"
    assert snapshot["progress"]["completed"] == 6
    # The server (and a fresh stream) still work after the broken pipe.
    status, payload = request(base, "/health")
    assert status == 200 and payload["status"] == "ok"
    with urllib.request.urlopen(
        f"{base}{API_PREFIX}/jobs/{job_id}/events", timeout=30
    ) as replay:
        events = [json.loads(line) for line in replay.read().splitlines()]
    assert events[-1]["event"] == "done"


def test_cancel_queued_job_via_api(server):
    base, _ = server
    # Cold seeds occupy the single worker; the second job is queued.
    running = request(base, "/jobs", method="POST",
                      payload=tiny_spec(seeds=(50, 51, 52)).to_dict())[1]
    queued = request(base, "/jobs", method="POST",
                     payload=tiny_spec(seeds=(60, 61)).to_dict())[1]
    status, cancelled = request(
        base, f"/jobs/{queued['id']}/cancel", method="POST", payload={}
    )
    assert status == 200
    assert cancelled["state"] == "cancelled"
    request(base, f"/jobs/{running['id']}/cancel", method="POST", payload={})
    poll_done(base, running["id"])


def test_error_statuses(server):
    base, _ = server
    assert request(base, "/jobs/nope")[0] == 404
    assert request(base, "/nope")[0] == 404
    assert request(base, "/health", method="POST", payload={})[0] == 405
    status, payload = request(base, "/jobs", method="POST",
                              payload={"designs": ["not_a_design"]})
    assert status == 400
    assert "invalid spec" in payload["error"]
    status, payload = request(base, "/jobs", method="POST",
                              payload={"plugins": ["evil.py"]})
    assert status == 400
    assert "plugins" in payload["error"]
    status, payload = request(base, "/figures/fig99", method="POST", payload={})
    assert status == 404


class TestFastAPIFrontend:
    """The FastAPI adapter serves the same semantics (needs the extra)."""

    @pytest.fixture()
    def client(self, tmp_path, result_payload):
        pytest.importorskip("fastapi")
        pytest.importorskip("httpx")  # TestClient's transport
        from fastapi.testclient import TestClient

        from repro.serve.fastapi_app import create_app

        store = ResultStore(str(tmp_path / "store"))
        result = SimulationResult.from_dict(result_payload)
        for point in tiny_spec(seeds=(0, 1)).points():
            store.put(point, result)
        manager = JobManager(store_dir=store.directory, workers=1)
        with TestClient(create_app(SimulationService(manager))) as client:
            yield client
        manager.shutdown(wait=False)

    def test_submit_and_results_match_builtin_semantics(self, client):
        assert client.get(f"{API_PREFIX}/health").json()["status"] == "ok"
        spec = tiny_spec(seeds=(0, 1))
        submitted = client.post(f"{API_PREFIX}/jobs", json=spec.to_dict())
        assert submitted.status_code == 202
        job_id = submitted.json()["id"]
        for _ in range(600):
            snapshot = client.get(f"{API_PREFIX}/jobs/{job_id}").json()
            if snapshot["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert snapshot["state"] == "done"
        assert snapshot["progress"]["simulated"] == 0
        results = client.get(f"{API_PREFIX}/jobs/{job_id}/results").json()
        assert results["complete"] is True
        assert len(results["points"]) == 2
        assert client.get(f"{API_PREFIX}/jobs/nope").status_code == 404
        assert client.post(f"{API_PREFIX}/health").status_code == 405

    def test_missing_extra_message_names_install_target(self):
        # Independent of whether fastapi is installed: the gate's error
        # text must tell the operator exactly what to do.
        from repro.serve.fastapi_app import INSTALL_HINT

        assert "repro[serve]" in INSTALL_HINT
        assert "--http builtin" in INSTALL_HINT
