"""Dirty-eviction behaviour (paper Section 2).

The paper observes that DRAM-cache evictions under scale-out workloads
are mostly *dirty* — data lives in the cache long enough to be modified —
and that dirty evictions consume both off-chip and stacked bandwidth
(read from stacked, write off-chip).
"""

import pytest

from repro.sim.simulator import quick_run


@pytest.fixture(scope="module")
def data_serving_page():
    return quick_run("data_serving", design="page", capacity_mb=64, num_requests=80_000)


class TestDirtyEvictions:
    def test_writebacks_happen(self, data_serving_page):
        assert data_serving_page.writeback_blocks > 0

    def test_writebacks_reach_offchip(self, data_serving_page):
        assert data_serving_page.offchip_write_bytes >= (
            data_serving_page.writeback_blocks * 64
        )

    def test_write_heavy_workload_writes_back_more(self):
        write_heavy = quick_run(
            "data_serving", design="footprint", capacity_mb=64, num_requests=80_000
        )
        read_heavy = quick_run(
            "web_search", design="footprint", capacity_mb=64, num_requests=80_000
        )
        wh = write_heavy.writeback_blocks / max(1, write_heavy.fill_blocks)
        rh = read_heavy.writeback_blocks / max(1, read_heavy.fill_blocks)
        assert wh > rh

    def test_eviction_reads_stacked_dram(self):
        """Dirty evictions read the stacked DRAM before writing off-chip,
        consuming stacked bandwidth (the paper's availability argument)."""
        result = quick_run(
            "data_serving", design="page", capacity_mb=64, num_requests=80_000
        )
        # Stacked reads = hits served + eviction reads; with a low hit
        # count and many dirty evictions, stacked read traffic must exceed
        # what hits alone explain.
        assert result.stacked_bytes > 0
