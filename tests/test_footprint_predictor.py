"""Unit tests for the Footprint History Table."""

import pytest

from repro.core.footprint_predictor import FootprintHistoryTable, PredictorStats


@pytest.fixture
def fht():
    return FootprintHistoryTable(num_entries=64, associativity=8, blocks_per_page=32)


class TestLifecycle:
    def test_cold_key_predicts_none(self, fht):
        assert fht.predict(0x400, 3) is None

    def test_allocate_predicts_trigger_block(self, fht):
        fht.allocate(0x400, 3)
        assert fht.predict(0x400, 3) == 1 << 3

    def test_update_stores_footprint(self, fht):
        fht.allocate(0x400, 3)
        fht.update(0x400, 3, 0b1111000)
        assert fht.predict(0x400, 3) == 0b1111000 | 1 << 3

    def test_update_always_includes_trigger(self, fht):
        fht.allocate(0x400, 5)
        fht.update(0x400, 5, 0)
        assert fht.predict(0x400, 5) == 1 << 5

    def test_latest_footprint_wins(self, fht):
        fht.allocate(0x400, 0)
        fht.update(0x400, 0, 0b0110)
        fht.update(0x400, 0, 0b1001)
        assert fht.predict(0x400, 0) == 0b1001

    def test_keys_are_pc_and_offset(self, fht):
        fht.allocate(0x400, 1)
        assert fht.predict(0x400, 2) is None
        assert fht.predict(0x404, 1) is None

    def test_stale_update_dropped(self, fht):
        fht.update(0x999, 7, 0b11)
        assert fht.stale_updates == 1
        assert fht.predict(0x999, 7) is None

    def test_offset_validation(self, fht):
        with pytest.raises(ValueError):
            fht.allocate(0x400, 32)
        with pytest.raises(ValueError):
            fht.update(0x400, 0, 1 << 32)


class TestGeometry:
    def test_entries_must_divide(self):
        with pytest.raises(ValueError):
            FootprintHistoryTable(num_entries=100, associativity=16)

    def test_capacity_eviction(self):
        fht = FootprintHistoryTable(num_entries=2, associativity=2, blocks_per_page=32)
        keys = [(0x400 + 4 * i, 0) for i in range(3)]
        for pc, offset in keys:
            fht.allocate(pc, offset)
        resident = sum(1 for pc, off in keys if fht.predict(pc, off) is not None)
        assert resident == 2

    def test_paper_storage_budget(self):
        # 16K entries for 2KB pages: the paper reports 144KB.
        fht = FootprintHistoryTable(num_entries=16384, associativity=16, blocks_per_page=32)
        assert fht.storage_bytes() == pytest.approx(144 * 1024, rel=0.05)

    def test_hit_ratio(self, fht):
        fht.allocate(0x400, 0)
        fht.predict(0x400, 0)
        fht.predict(0x404, 0)
        # Three lookups total (allocate does not count), one hit... plus the
        # initial cold predict happened before allocate in real flows.
        assert 0.0 <= fht.hit_ratio <= 1.0

    def test_resident_entries(self, fht):
        fht.allocate(0x400, 0)
        fht.allocate(0x404, 1)
        assert fht.resident_entries == 2


class TestPredictorStats:
    def test_empty_stats(self):
        stats = PredictorStats()
        assert stats.coverage == 0.0
        assert stats.underprediction_rate == 0.0
        assert stats.overprediction_rate == 0.0

    def test_rates(self):
        stats = PredictorStats(
            covered_blocks=80, underpredicted_blocks=20, overpredicted_blocks=10
        )
        assert stats.demanded_blocks == 100
        assert stats.coverage == pytest.approx(0.8)
        assert stats.underprediction_rate == pytest.approx(0.2)
        assert stats.overprediction_rate == pytest.approx(0.1)

    def test_coverage_plus_under_is_one(self):
        stats = PredictorStats(covered_blocks=3, underpredicted_blocks=7)
        assert stats.coverage + stats.underprediction_rate == pytest.approx(1.0)
