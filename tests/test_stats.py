"""Unit tests for the statistics primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.perf.stats import (
    Counter,
    Histogram,
    RatioStat,
    StatGroup,
    confidence_interval_95,
    geometric_mean,
    mean,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_increment_default(self):
        counter = Counter("c")
        counter.increment()
        assert counter.value == 1

    def test_increment_amount(self):
        counter = Counter("c")
        counter.increment(5)
        counter.increment(3)
        assert counter.value == 8

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            Counter("c", initial=-1)

    def test_reset(self):
        counter = Counter("c", initial=7)
        counter.reset()
        assert counter.value == 0


class TestRatioStat:
    def test_empty_ratio_is_zero(self):
        assert RatioStat("r").ratio == 0.0

    def test_record(self):
        ratio = RatioStat("r")
        ratio.record(True)
        ratio.record(False)
        ratio.record(True)
        assert ratio.ratio == pytest.approx(2 / 3)

    def test_bulk_add(self):
        ratio = RatioStat("r")
        ratio.add(3, 10)
        assert ratio.ratio == pytest.approx(0.3)

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            RatioStat("r").add(-1, 5)

    def test_reset(self):
        ratio = RatioStat("r")
        ratio.record(True)
        ratio.reset()
        assert ratio.denominator == 0


class TestHistogram:
    def test_total(self):
        histogram = Histogram("h")
        histogram.record(3)
        histogram.record(3)
        histogram.record(5, count=4)
        assert histogram.total == 6

    def test_count(self):
        histogram = Histogram("h")
        histogram.record(2, count=3)
        assert histogram.count(2) == 3
        assert histogram.count(9) == 0

    def test_items_sorted(self):
        histogram = Histogram("h")
        histogram.record(5)
        histogram.record(1)
        histogram.record(3)
        assert [v for v, _ in histogram.items()] == [1, 3, 5]

    def test_fraction_in_range(self):
        histogram = Histogram("h")
        for value in (1, 2, 3, 4):
            histogram.record(value)
        assert histogram.fraction_in_range(2, 3) == pytest.approx(0.5)

    def test_fraction_empty(self):
        assert Histogram("h").fraction_in_range(0, 10) == 0.0

    def test_mean(self):
        histogram = Histogram("h")
        histogram.record(2, count=2)
        histogram.record(4, count=2)
        assert histogram.mean() == pytest.approx(3.0)

    def test_mean_empty(self):
        assert Histogram("h").mean() == 0.0

    def test_percentile(self):
        histogram = Histogram("h")
        for value in range(1, 11):
            histogram.record(value)
        assert histogram.percentile(0.5) == 5
        assert histogram.percentile(1.0) == 10

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(0.5)

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").record(1, count=-1)

    def test_reset(self):
        histogram = Histogram("h")
        histogram.record(1)
        histogram.reset()
        assert histogram.total == 0


class TestStatGroup:
    def test_counter_get_or_create(self):
        group = StatGroup("g")
        assert group.counter("x") is group.counter("x")

    def test_ratio_get_or_create(self):
        group = StatGroup("g")
        assert group.ratio("x") is group.ratio("x")

    def test_histogram_get_or_create(self):
        group = StatGroup("g")
        assert group.histogram("x") is group.histogram("x")

    def test_reset_propagates(self):
        group = StatGroup("g")
        group.counter("c").increment(5)
        group.ratio("r").record(True)
        group.histogram("h").record(1)
        group.reset()
        assert group.counter("c").value == 0
        assert group.ratio("r").denominator == 0
        assert group.histogram("h").total == 0

    def test_as_dict(self):
        group = StatGroup("g")
        group.counter("c").increment(2)
        group.ratio("r").add(1, 2)
        flattened = group.as_dict()
        assert flattened["c"] == 2.0
        assert flattened["r"] == 0.5

    def test_as_dict_includes_histograms(self):
        group = StatGroup("g")
        group.histogram("density").record(4)
        group.histogram("density").record(8)
        flattened = group.as_dict()
        assert flattened["density_mean"] == 6.0
        assert flattened["density_total"] == 2.0

    def test_as_dict_empty_histogram(self):
        group = StatGroup("g")
        group.histogram("density")
        flattened = group.as_dict()
        assert flattened["density_mean"] == 0.0
        assert flattened["density_total"] == 0.0

    def test_histograms_accessor(self):
        group = StatGroup("g")
        histogram = group.histogram("density")
        histogram.record(3, count=5)
        accessor = group.histograms()
        assert accessor["density"] is histogram
        assert accessor["density"].count(3) == 5
        # The returned mapping is a copy; mutating it changes nothing.
        accessor.clear()
        assert group.histograms()["density"] is histogram


class TestAggregates:
    def test_geometric_mean_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_confidence_interval_covers_mean(self):
        values = [10.0, 11.0, 9.0, 10.5, 9.5]
        center, half = confidence_interval_95(values)
        assert center == pytest.approx(10.0)
        assert half > 0

    def test_confidence_interval_needs_two(self):
        with pytest.raises(ValueError):
            confidence_interval_95([1.0])

    def test_confidence_zero_variance(self):
        center, half = confidence_interval_95([5.0, 5.0, 5.0])
        assert center == 5.0
        assert half == 0.0

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20))
    def test_geometric_mean_bounded_by_min_max(self, values):
        result = geometric_mean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9
