"""The figure registry and the ``repro report`` pipeline."""

import os

import pytest

from repro.__main__ import main
from repro.exp import ExperimentSpec, ResultStore
from repro.reporting import (
    figure_names,
    get_figure,
    iter_figures,
    referenced_points,
    register_figure,
    run_figure,
    write_artifacts,
)
from repro.reporting import registry as registry_module

TINY_SPEC = ExperimentSpec(
    workloads="web_search", designs=("page",), capacities_mb=64, num_requests=2000
)


@pytest.fixture
def test_figure():
    """Register a tiny throwaway figure; unregister on teardown."""
    name = "_testfig"

    @register_figure(
        name,
        title="Test figure",
        artifacts=("_testfig_table", "_testfig_headline"),
        specs={"main": TINY_SPEC},
    )
    def render(ctx):
        result = ctx.sweep("main").get(design="page")
        rows = [("page", f"{result.miss_ratio:.3f}")]
        ctx.emit("_testfig_table", "design | MR", headers=("design", "MR"), rows=rows)
        ctx.emit("_testfig_headline", "headline text")
        return result

    yield name
    registry_module._REGISTRY.pop(name, None)


class TestRegistryIntegrity:
    EXPECTED = (
        "fig01", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
        "fig10", "fig11", "fig12", "sec63", "sec65", "sec67",
        "table1", "table4", "ablation_predictor", "ablation_indexing",
    )

    def test_all_paper_figures_registered(self):
        for name in self.EXPECTED:
            assert name in figure_names(), name

    def test_artifact_names_unique_across_registry(self):
        seen = set()
        for figure in iter_figures():
            for artifact in figure.artifacts:
                assert artifact not in seen, artifact
                seen.add(artifact)

    def test_every_figure_resolves_its_points(self):
        # Grids must validate and hash; simulation-free figures are empty.
        for figure in iter_figures():
            points = figure.points()
            if figure.specs:
                assert points
            for point in points:
                assert len(point.key()) == 20

    def test_referenced_points_cover_every_figure(self):
        referenced = set(referenced_points())
        for figure in iter_figures():
            assert referenced.issuperset(figure.points()), figure.name

    def test_figures_share_grid_points(self):
        # The registry must preserve the benches' cross-figure sharing:
        # Fig. 5's (workload, design, capacity) runs also feed Figs. 10/11.
        fig05 = set(get_figure("fig05").points())
        assert fig05.issuperset(
            p for p in get_figure("fig10").points() if p.design != "baseline"
        )
        assert fig05.issuperset(get_figure("fig11").points())

    def test_get_figure_unknown_name(self):
        with pytest.raises(KeyError, match="unknown figure 'nope'"):
            get_figure("nope")


class TestRegistration:
    def test_duplicate_figure_name_rejected(self, test_figure):
        with pytest.raises(ValueError, match="already registered"):
            register_figure(test_figure, title="x", artifacts=("other",))(lambda ctx: None)

    def test_claimed_artifact_rejected(self):
        with pytest.raises(ValueError, match="already claimed"):
            register_figure(
                "_testfig_clash", title="x", artifacts=("fig01_opportunity",)
            )(lambda ctx: None)
        assert "_testfig_clash" not in figure_names()


class TestRunFigure:
    def test_simulates_then_serves_from_store(self, test_figure, tmp_path):
        store = ResultStore(str(tmp_path))
        first = run_figure(test_figure, store=store)
        assert first.points == 1
        assert first.simulated == 1
        assert first.hits == 0
        second = run_figure(test_figure, store=store)
        assert second.simulated == 0
        assert second.hits == 1
        assert second.artifacts == first.artifacts

    def test_data_and_artifacts_surface(self, test_figure, tmp_path):
        output = run_figure(test_figure, store=ResultStore(str(tmp_path)))
        assert 0.0 <= output.data.miss_ratio <= 1.0
        names = [a.name for a in output.artifacts]
        assert names == ["_testfig_table", "_testfig_headline"]

    def test_write_artifacts_txt_and_csv(self, test_figure, tmp_path):
        output = run_figure(test_figure, store=ResultStore(str(tmp_path / "s")))
        out_dir = str(tmp_path / "results")
        paths = write_artifacts(output, out_dir, with_csv=True)
        # Text for both artifacts; CSV only for the tabular one.
        assert [os.path.basename(p) for p in paths] == [
            "_testfig_table.txt", "_testfig_table.csv", "_testfig_headline.txt"
        ]
        with open(paths[0]) as handle:
            assert handle.read() == "design | MR\n"  # text + trailing newline
        with open(paths[1]) as handle:
            assert handle.read().splitlines()[0] == "design,MR"

    def test_undeclared_artifact_rejected(self, tmp_path):
        @register_figure("_testfig_bad_emit", title="x", artifacts=("declared",),
                         specs={"main": TINY_SPEC})
        def render(ctx):
            ctx.emit("undeclared", "text")

        try:
            with pytest.raises(ValueError, match="does not declare artifact"):
                run_figure("_testfig_bad_emit", store=ResultStore(str(tmp_path)))
        finally:
            registry_module._REGISTRY.pop("_testfig_bad_emit", None)

    def test_missing_declared_artifact_rejected(self, tmp_path):
        @register_figure("_testfig_missing", title="x", artifacts=("declared",),
                         specs={"main": TINY_SPEC})
        def render(ctx):
            return None

        try:
            with pytest.raises(RuntimeError, match="did not emit"):
                run_figure("_testfig_missing", store=ResultStore(str(tmp_path)))
        finally:
            registry_module._REGISTRY.pop("_testfig_missing", None)

    def test_unknown_sweep_name_rejected(self, tmp_path):
        @register_figure("_testfig_sweep", title="x", artifacts=("a",),
                         specs={"main": TINY_SPEC})
        def render(ctx):
            ctx.sweep("wrong")

        try:
            with pytest.raises(KeyError, match="has no spec 'wrong'"):
                run_figure("_testfig_sweep", store=ResultStore(str(tmp_path)))
        finally:
            registry_module._REGISTRY.pop("_testfig_sweep", None)


class TestReportCLI:
    def test_list_figures(self, capsys):
        assert main(["report", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "fig01_opportunity" in out

    def test_unknown_figure_rejected(self, capsys):
        assert main(["report", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err
        assert "fig01" in err  # the known names are suggested

    def test_report_runs_and_writes_artifacts(self, test_figure, tmp_path, capsys):
        argv = ["report", test_figure, "--store", str(tmp_path / "store"),
                "--out", str(tmp_path / "out")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 simulated" in out
        assert "_testfig_table.txt" in out
        assert os.path.exists(tmp_path / "out" / "_testfig_table.txt")

        # Re-run: fully store-served, artifacts byte-identical.
        with open(tmp_path / "out" / "_testfig_table.txt") as handle:
            before = handle.read()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "all points served from the result store" in out
        with open(tmp_path / "out" / "_testfig_table.txt") as handle:
            assert handle.read() == before

    def test_report_quiet_suppresses_tables_and_progress(
        self, test_figure, tmp_path, capsys
    ):
        argv = ["report", test_figure, "--quiet",
                "--store", str(tmp_path / "store"), "--out", str(tmp_path / "out")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "headline text" not in out
        assert "[1/" not in out  # per-point progress suppressed too
        assert f"{test_figure}:" in out

    def test_analysis_only_report_does_not_claim_store_service(self, tmp_path, capsys):
        argv = ["report", "table4", "--quiet",
                "--store", str(tmp_path / "store"), "--out", str(tmp_path / "out")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 points" in out
        assert "all points served" not in out

    def test_store_override_does_not_redirect_artifacts(self, monkeypatch, tmp_path):
        from repro.exp.store import default_results_dir

        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
        assert default_results_dir().endswith(os.path.join("benchmarks", "results"))

    def test_report_csv(self, test_figure, tmp_path, capsys):
        argv = ["report", test_figure, "--csv", "--quiet",
                "--store", str(tmp_path / "store"), "--out", str(tmp_path / "out")]
        assert main(argv) == 0
        assert os.path.exists(tmp_path / "out" / "_testfig_table.csv")
