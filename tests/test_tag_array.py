"""Unit tests for the Footprint Cache tag array."""

import pytest

from repro.core.tag_array import FootprintTagArray


@pytest.fixture
def tags():
    # 16 pages: 2 sets x 8 ways.
    return FootprintTagArray(capacity_bytes=16 * 2048, associativity=8)


class TestAllocation:
    def test_lookup_missing(self, tags):
        assert tags.lookup(0x4000) is None

    def test_allocate_then_lookup(self, tags):
        entry = tags.allocate(0x4000, fht_key=(0x400, 3), predicted_mask=0b1000)
        assert tags.lookup(0x4000) is entry
        assert entry.fht_key == (0x400, 3)
        assert entry.predicted_mask == 0b1000

    def test_frames_unique(self, tags):
        pages = [i * 2 * 2048 for i in range(8)]  # all in set 0
        frames = {tags.allocate(p, (0, 0), 1).frame for p in pages}
        assert len(frames) == 8

    def test_allocate_full_set_raises(self, tags):
        for i in range(8):
            tags.allocate(i * 2 * 2048, (0, 0), 1)
        with pytest.raises(RuntimeError):
            tags.allocate(8 * 2 * 2048, (0, 0), 1)

    def test_needs_eviction(self, tags):
        for i in range(8):
            tags.allocate(i * 2 * 2048, (0, 0), 1)
        candidate = tags.needs_eviction(8 * 2 * 2048)
        assert candidate is not None
        assert candidate[0] == 0  # LRU: first allocated

    def test_needs_eviction_none_when_room(self, tags):
        assert tags.needs_eviction(0) is None

    def test_evict_releases_frame(self, tags):
        entry = tags.allocate(0x4000, (0, 0), 1)
        frame = entry.frame
        tags.evict(0x4000)
        new_entry = tags.allocate(0x4000, (0, 0), 1)
        assert new_entry.frame == frame

    def test_evict_missing_raises(self, tags):
        with pytest.raises(KeyError):
            tags.evict(0x4000)

    def test_resident_pages(self, tags):
        tags.allocate(0, (0, 0), 1)
        tags.allocate(2048, (0, 0), 1)
        assert tags.resident_pages == 2


class TestEntryState:
    def test_blocks_start_empty(self, tags):
        entry = tags.allocate(0, (0, 0), 0b11)
        assert entry.blocks.present_mask == 0
        assert entry.demanded_mask == 0

    def test_masks_proxy_block_bits(self, tags):
        entry = tags.allocate(0, (0, 0), 0b11)
        entry.blocks.install_prefetched(0b11)
        entry.blocks.mark_demanded(0, dirty=True)
        assert entry.demanded_mask == 0b01
        assert entry.dirty_mask == 0b01


class TestGeometry:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FootprintTagArray(capacity_bytes=1000)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            FootprintTagArray(capacity_bytes=16 * 2048, block_size=100)

    def test_paper_tag_storage_64mb(self):
        # Table 4: 0.40MB for a 64MB Footprint Cache.
        tags = FootprintTagArray(capacity_bytes=64 * 1024 * 1024)
        assert tags.storage_bytes() == pytest.approx(0.40 * 1024 * 1024, rel=0.05)

    def test_paper_tag_storage_512mb(self):
        # Table 4: 3.12MB for a 512MB Footprint Cache.
        tags = FootprintTagArray(capacity_bytes=512 * 1024 * 1024)
        assert tags.storage_bytes() == pytest.approx(3.12 * 1024 * 1024, rel=0.05)
