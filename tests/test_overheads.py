"""Unit tests for the Table 4 overhead model."""

import pytest

from repro.core.overheads import (
    DesignOverheads,
    footprint_tag_bytes,
    missmap_bytes,
    missmap_entries_for,
    overheads_for,
    page_tag_bytes,
    sram_latency_cycles,
    table4,
)

MB = 1024 * 1024

# Table 4 of the paper: (capacity MB, design) -> (storage MB, latency).
PAPER_TABLE4 = {
    ("footprint", 64): (0.40, 4),
    ("footprint", 128): (0.80, 6),
    ("footprint", 256): (1.58, 9),
    ("footprint", 512): (3.12, 11),
    ("page", 64): (0.22, 4),
    ("page", 128): (0.44, 5),
    ("page", 256): (0.86, 6),
    ("page", 512): (1.69, 9),
    ("block", 64): (1.95, 9),
    ("block", 128): (1.95, 9),
    ("block", 256): (1.95, 9),
    ("block", 512): (2.92, 11),
}


class TestTable4Reproduction:
    @pytest.mark.parametrize(("design", "capacity_mb"), sorted(PAPER_TABLE4))
    def test_storage_matches_paper(self, design, capacity_mb):
        paper_mb, _ = PAPER_TABLE4[(design, capacity_mb)]
        overheads = overheads_for(design, capacity_mb * MB)
        assert overheads.storage_mb == pytest.approx(paper_mb, rel=0.15)

    @pytest.mark.parametrize(("design", "capacity_mb"), sorted(PAPER_TABLE4))
    def test_latency_matches_paper(self, design, capacity_mb):
        _, paper_latency = PAPER_TABLE4[(design, capacity_mb)]
        overheads = overheads_for(design, capacity_mb * MB)
        assert abs(overheads.latency_cycles - paper_latency) <= 1

    def test_table4_helper_covers_all(self):
        table = table4()
        assert set(table) == {"footprint", "block", "page"}
        for rows in table.values():
            assert set(rows) == {64, 128, 256, 512}


class TestLatencyModel:
    def test_monotonic_in_size(self):
        sizes = [int(0.1 * MB), int(0.5 * MB), MB, 2 * MB, 4 * MB]
        latencies = [sram_latency_cycles(s) for s in sizes]
        assert latencies == sorted(latencies)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sram_latency_cycles(-1)

    def test_huge_array_capped(self):
        assert sram_latency_cycles(100 * MB) == 13


class TestComponents:
    def test_footprint_larger_than_page_tags(self):
        # The footprint entry carries two bit vectors and an FHT pointer.
        assert footprint_tag_bytes(64 * MB) > page_tag_bytes(64 * MB)

    def test_tags_scale_linearly(self):
        assert footprint_tag_bytes(128 * MB) == pytest.approx(
            2 * footprint_tag_bytes(64 * MB), rel=0.05
        )

    def test_larger_pages_shrink_tags(self):
        assert footprint_tag_bytes(64 * MB, page_size=4096) < footprint_tag_bytes(
            64 * MB, page_size=2048
        )

    def test_missmap_entries_rule(self):
        assert missmap_entries_for(64 * MB) == 192 * 1024
        assert missmap_entries_for(256 * MB) == 192 * 1024
        assert missmap_entries_for(512 * MB) == 288 * 1024

    def test_missmap_bytes_positive(self):
        assert missmap_bytes(1024) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            overheads_for("unknown", 64 * MB)
        with pytest.raises(ValueError):
            footprint_tag_bytes(0)
        with pytest.raises(ValueError):
            missmap_entries_for(0)
        with pytest.raises(ValueError):
            missmap_bytes(0)

    def test_no_metadata_designs(self):
        for design in ("ideal", "baseline"):
            overheads = overheads_for(design, 64 * MB)
            assert overheads.storage_bytes == 0
            assert overheads.latency_cycles == 0
