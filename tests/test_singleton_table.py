"""Unit tests for the Singleton Table."""

import pytest

from repro.core.singleton_table import SingletonEntry, SingletonTable


@pytest.fixture
def st_table():
    return SingletonTable(num_entries=16, associativity=4)


class TestBasics:
    def test_lookup_missing(self, st_table):
        assert st_table.lookup(0x1000) is None

    def test_record_and_lookup(self, st_table):
        st_table.record_bypass(0x1000, pc=0x400, offset=5)
        entry = st_table.lookup(0x1000)
        assert entry == SingletonEntry(pc=0x400, offset=5)

    def test_second_access_consumes(self, st_table):
        st_table.record_bypass(0x1000, pc=0x400, offset=5)
        entry = st_table.on_second_access(0x1000)
        assert entry is not None
        assert st_table.lookup(0x1000) is None
        assert st_table.second_access_hits == 1

    def test_second_access_missing(self, st_table):
        assert st_table.on_second_access(0x2000) is None
        assert st_table.second_access_hits == 0

    def test_capacity_eviction(self):
        table = SingletonTable(num_entries=2, associativity=1)
        table.record_bypass(0, pc=1, offset=0)
        table.record_bypass(2, pc=2, offset=0)  # same set (page % 2 sets)
        assert table.lookup(0) is None
        assert table.lookup(2) is not None

    def test_paper_storage_3kb(self):
        table = SingletonTable(num_entries=512, associativity=8)
        assert table.storage_bytes() == pytest.approx(3 * 1024, rel=0.1)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SingletonTable(num_entries=10, associativity=16)

    def test_recorded_counter(self, st_table):
        st_table.record_bypass(0x1000, pc=1, offset=0)
        st_table.record_bypass(0x2000, pc=2, offset=1)
        assert st_table.recorded == 2
        assert st_table.resident_entries == 2
