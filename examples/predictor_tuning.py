#!/usr/bin/env python
"""Predictor tuning: page size and history size trade-offs (Figs. 8-9).

Sweeps the two knobs the paper tunes for the footprint predictor:

* the page size (1KB / 2KB / 4KB) — larger pages shrink the tag array but
  dilute the ``PC & offset`` correlation, and
* the number of FHT entries — history too small thrashes and loses
  coverage; the paper settles on 16K entries (144KB of SRAM).

Usage::

    python examples/predictor_tuning.py [workload]
"""

import sys

from repro import quick_run
from repro.analysis.predictor_accuracy import predictor_accuracy
from repro.analysis.report import format_table, percent
from repro.core.overheads import footprint_tag_bytes
from repro.workloads.cloudsuite import WORKLOAD_NAMES

MB = 1024 * 1024


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "web_search"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; pick one of {WORKLOAD_NAMES}")

    print(f"Sweeping predictor parameters for {workload!r} ...")

    page_rows = []
    for page_size in (1024, 2048, 4096):
        breakdown = predictor_accuracy(
            workload, capacity_mb=256, page_size=page_size, num_requests=120_000
        )
        tags_mb = footprint_tag_bytes(256 * MB, page_size=page_size) / MB
        page_rows.append(
            (
                f"{page_size}B",
                percent(breakdown.coverage),
                percent(breakdown.underprediction),
                percent(breakdown.overprediction),
                f"{tags_mb:.2f}MB",
            )
        )
    print()
    print(
        format_table(
            ("Page size", "Covered", "Under", "Over", "Tag SRAM (256MB cache)"),
            page_rows,
            title="Fig. 8 analogue - page size vs predictor accuracy",
        )
    )

    fht_rows = []
    for entries in (256, 1024, 4096, 16384):
        result = quick_run(
            workload, design="footprint", capacity_mb=256,
            num_requests=120_000, fht_entries=entries,
        )
        fht_rows.append(
            (f"{entries}", percent(result.hit_ratio), percent(result.predictor_coverage))
        )
    print()
    print(
        format_table(
            ("FHT entries", "Hit ratio", "Coverage"),
            fht_rows,
            title="Fig. 9 analogue - history size vs hit ratio",
        )
    )


if __name__ == "__main__":
    main()
