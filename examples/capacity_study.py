#!/usr/bin/env python
"""Capacity study: sweep 64-512MB caches across all designs (Figs. 5-7).

Reproduces, for one workload, the paper's central comparison: how the
block-based, page-based and Footprint designs trade hit ratio against
off-chip traffic as the die-stacked capacity grows, and what that does to
end performance.

Usage::

    python examples/capacity_study.py [workload]
"""

import sys

from repro import quick_run
from repro.analysis.report import format_table, percent
from repro.workloads.cloudsuite import WORKLOAD_NAMES

CAPACITIES_MB = (64, 128, 256, 512)
DESIGNS = ("block", "page", "footprint", "ideal")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "data_serving"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; pick one of {WORKLOAD_NAMES}")

    print(f"Capacity study for {workload!r} (this runs ~17 simulations) ...")
    baseline = quick_run(workload, design="baseline", capacity_mb=64, num_requests=120_000)

    rows = []
    for capacity in CAPACITIES_MB:
        for design in DESIGNS:
            result = quick_run(
                workload, design=design, capacity_mb=capacity, num_requests=120_000
            )
            rows.append(
                (
                    f"{capacity}MB",
                    design,
                    percent(result.miss_ratio),
                    f"{result.offchip_traffic_normalized:.2f}x",
                    percent(result.improvement_over(baseline)),
                )
            )

    print()
    print(
        format_table(
            ("Capacity", "Design", "Miss ratio", "Off-chip traffic", "Perf vs baseline"),
            rows,
            title=f"Die-stacked cache designs on {workload}",
        )
    )
    print()
    print(
        "Expected shape (paper Figs. 5-7): the block design's miss ratio stays "
        "high and flat; the page design hits well but multiplies traffic; "
        "Footprint Cache combines page-level hits with block-level traffic."
    )


if __name__ == "__main__":
    main()
