#!/usr/bin/env python
"""Capacity study: sweep 64-512MB caches across all designs (Figs. 5-7).

Reproduces, for one workload, the paper's central comparison: how the
block-based, page-based and Footprint designs trade hit ratio against
off-chip traffic as the die-stacked capacity grows, and what that does to
end performance.

The grid runs through the experiment engine: points fan out over worker
processes and persist in the result store, so a second invocation (or a
bench that shares points) is served from cache.

Usage::

    python examples/capacity_study.py [workload] [--jobs N]
"""

import argparse

from repro.analysis.report import format_table, percent
from repro.exp import ExperimentPoint, ExperimentSpec, ResultStore, SweepRunner
from repro.workloads.cloudsuite import WORKLOAD_NAMES

CAPACITIES_MB = (64, 128, 256, 512)
DESIGNS = ("block", "page", "footprint", "ideal")
N = 120_000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workload", nargs="?", default="data_serving",
                        choices=WORKLOAD_NAMES)
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (default: one per CPU)")
    args = parser.parse_args()
    workload = args.workload

    spec = ExperimentSpec(
        workloads=workload,
        designs=DESIGNS,
        capacities_mb=CAPACITIES_MB,
        num_requests=N,
    )
    print(f"Capacity study for {workload!r} ({len(spec) + 1} simulations) ...")

    runner = SweepRunner(store=ResultStore(), jobs=args.jobs)
    results = runner.run(spec)
    baseline = runner.run_one(
        ExperimentPoint(workload=workload, design="baseline", num_requests=N)
    )

    rows = []
    for capacity in CAPACITIES_MB:
        for design in DESIGNS:
            result = results.get(design=design, capacity_mb=capacity)
            rows.append(
                (
                    f"{capacity}MB",
                    design,
                    percent(result.miss_ratio),
                    f"{result.offchip_traffic_normalized:.2f}x",
                    percent(result.improvement_over(baseline)),
                )
            )

    print()
    print(
        format_table(
            ("Capacity", "Design", "Miss ratio", "Off-chip traffic", "Perf vs baseline"),
            rows,
            title=f"Die-stacked cache designs on {workload}",
        )
    )
    print()
    print(
        "Expected shape (paper Figs. 5-7): the block design's miss ratio stays "
        "high and flat; the page design hits well but multiplies traffic; "
        "Footprint Cache combines page-level hits with block-level traffic."
    )


if __name__ == "__main__":
    main()
