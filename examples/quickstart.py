#!/usr/bin/env python
"""Quickstart: simulate a Footprint Cache on one scale-out workload.

Runs the Web Search workload through a 256MB (scaled) Footprint Cache and
the no-cache baseline, then prints the numbers the paper leads with: hit
ratio, off-chip traffic, predictor accuracy, and performance improvement.

Usage::

    python examples/quickstart.py [workload]

where ``workload`` is one of: data_serving, mapreduce, multiprogrammed,
sat_solver, web_frontend, web_search (default).
"""

import sys

from repro import quick_run
from repro.analysis.report import percent
from repro.workloads.cloudsuite import WORKLOAD_NAMES


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "web_search"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; pick one of {WORKLOAD_NAMES}")

    print(f"Simulating {workload!r} on a 16-core pod (scaled 256MB cache) ...")
    baseline = quick_run(workload, design="baseline", capacity_mb=256, num_requests=120_000)
    footprint = quick_run(workload, design="footprint", capacity_mb=256, num_requests=120_000)

    print()
    print(f"  DRAM cache hit ratio      : {percent(footprint.hit_ratio)}")
    print(f"  off-chip traffic (vs none): {footprint.offchip_traffic_normalized:.2f}x")
    print(f"  predictor coverage        : {percent(footprint.predictor_coverage)}")
    print(f"  predictor overprediction  : {percent(footprint.predictor_overprediction)}")
    print(f"  singleton bypasses        : {percent(footprint.bypass_ratio)}")
    improvement = footprint.improvement_over(baseline)
    print(f"  performance improvement   : {percent(improvement)} over the baseline")
    print()
    print(
        "The paper's Footprint Cache delivers page-cache hit ratios at "
        "block-cache traffic; both properties should be visible above."
    )


if __name__ == "__main__":
    main()
