#!/usr/bin/env python
"""Energy study: DRAM dynamic energy per instruction (Figs. 10-11).

Compares the four systems' off-chip and stacked DRAM dynamic energy,
split into activate/precharge (row manipulation) and read/write (burst)
components — the paper's Figs. 10 and 11.

Usage::

    python examples/energy_study.py [workload]
"""

import sys

from repro import quick_run
from repro.analysis.report import format_table, percent
from repro.workloads.cloudsuite import WORKLOAD_NAMES

DESIGNS = ("baseline", "block", "page", "footprint")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "web_frontend"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; pick one of {WORKLOAD_NAMES}")

    print(f"Measuring DRAM dynamic energy for {workload!r} (256MB caches) ...")
    results = {
        design: quick_run(workload, design=design, capacity_mb=256, num_requests=120_000)
        for design in DESIGNS
    }

    base_epi = results["baseline"].offchip_energy_per_instruction()
    rows = []
    for design in DESIGNS:
        result = results[design]
        instructions = max(1, result.performance.instructions)
        act = result.offchip_activate_nj / instructions
        burst = result.offchip_read_write_nj / instructions
        rows.append(
            (
                design,
                percent((act + burst) / base_epi),
                percent(act / base_epi),
                percent(burst / base_epi),
            )
        )
    print()
    print(
        format_table(
            ("Design", "Total (vs baseline)", "Activate/Precharge", "Read/Write"),
            rows,
            title="Fig. 10 analogue - off-chip DRAM energy per instruction",
        )
    )

    block_epi = results["block"].stacked_energy_per_instruction()
    rows = []
    for design in ("block", "page", "footprint"):
        result = results[design]
        rows.append((design, percent(result.stacked_energy_per_instruction() / block_epi)))
    print()
    print(
        format_table(
            ("Design", "Stacked energy (vs block)"),
            rows,
            title="Fig. 11 analogue - stacked DRAM energy per instruction",
        )
    )
    print()
    print(
        "Expected shape: every cache slashes off-chip energy; the page design "
        "pays in burst energy (overfetch), the block design in activates "
        "(close-page, no locality); Footprint Cache is lowest overall."
    )


if __name__ == "__main__":
    main()
