#!/usr/bin/env python
"""Custom workload: define your own access-function mix and evaluate it.

Shows the extension point a downstream user would reach for first:
building a :class:`WorkloadProfile` from scratch — here a synthetic
"in-memory analytics" service mixing columnar scans with point lookups —
and running every cache design against it.

Usage::

    python examples/custom_workload.py
"""

from repro.analysis.report import format_table, percent
from repro.sim.config import CacheConfig, SimulationConfig
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.profiles import AccessFunctionSpec, WorkloadProfile

MB = 1024 * 1024

ANALYTICS = WorkloadProfile(
    name="analytics",
    functions=(
        # Columnar scan: reads whole pages of a column, streaming.
        AccessFunctionSpec(
            kind="full", weight=0.5, region_fraction=0.8,
            zipf_alpha=0.0, write_fraction=0.02,
        ),
        # Dimension-table lookups: hot, small, reused.
        AccessFunctionSpec(
            kind="sequential", weight=0.25, min_blocks=4, max_blocks=8,
            region_fraction=0.02, zipf_alpha=1.0, write_fraction=0.05,
        ),
        # Hash-join probes: singleton touches, no reuse.
        AccessFunctionSpec(
            kind="singleton", weight=0.25, region_fraction=1.0,
            zipf_alpha=0.05, write_fraction=0.05,
        ),
    ),
    dataset_bytes=64 * MB,
    instructions_per_access=150,
)


def main() -> None:
    print("Evaluating cache designs on a custom analytics workload ...")
    rows = []
    baseline_ipc = None
    for design in ("baseline", "block", "page", "footprint", "ideal"):
        config = SimulationConfig(
            workload="analytics",
            cache=CacheConfig(design=design, capacity_bytes=MB, tag_latency=9),
            num_requests=120_000,
        )
        system = build_system(config, profile=ANALYTICS)
        result = Simulator(config, system=system).run()
        if design == "baseline":
            baseline_ipc = result.aggregate_ipc
        rows.append(
            (
                design,
                percent(result.miss_ratio),
                f"{result.offchip_traffic_normalized:.2f}x",
                percent(result.aggregate_ipc / baseline_ipc - 1.0),
            )
        )
    print()
    print(
        format_table(
            ("Design", "Miss ratio", "Off-chip traffic", "Perf vs baseline"),
            rows,
            title="Custom analytics workload (1MB simulated cache)",
        )
    )
    print()
    print(
        "Scans plus hot lookups reward page-level allocation; join probes "
        "punish whole-page fetch - exactly the regime Footprint Cache's "
        "per-page footprints and singleton bypass are built for."
    )


if __name__ == "__main__":
    main()
