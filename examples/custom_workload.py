#!/usr/bin/env python
"""Custom workload: register your own profile and sweep it like a built-in.

Shows the extension point a downstream user would reach for first: a
:class:`WorkloadProfile` built from scratch — here a synthetic
"in-memory analytics" service mixing columnar scans with point lookups —
registered with ``@register_profile`` so ``"analytics"`` is a valid
workload name everywhere (``SimulationConfig``, ``ExperimentSpec``,
the CLI, the result store), with no out-of-band arguments.

Because this module registers itself as a *plugin* on the spec
(``plugins=(__file__,)``), the sweep below runs with two worker
processes: each worker loads this file on startup, re-creating the
profile registration before it simulates.  The same file works from the
command line::

    python examples/custom_workload.py
    python -m repro sweep --plugin examples/custom_workload.py \
        --workloads analytics --designs footprint,page --capacities 256 \
        --requests 60000 --jobs 2
"""

import os

from repro.analysis.report import format_table, percent
from repro.exp import ExperimentSpec, SweepRunner
from repro.workloads.profiles import (
    AccessFunctionSpec,
    WorkloadProfile,
    register_profile,
)

MB = 1024 * 1024

# exist_ok=True makes the registration import-idempotent: the parent
# process may import this file twice (once as __main__, once as the
# plugin the spec names), and fork-based workers inherit it pre-loaded.
ANALYTICS = register_profile(
    WorkloadProfile(
        name="analytics",
        functions=(
            # Columnar scan: reads whole pages of a column, streaming.
            AccessFunctionSpec(
                kind="full", weight=0.5, region_fraction=0.8,
                zipf_alpha=0.0, write_fraction=0.02,
            ),
            # Dimension-table lookups: hot, small, reused.
            AccessFunctionSpec(
                kind="sequential", weight=0.25, min_blocks=4, max_blocks=8,
                region_fraction=0.02, zipf_alpha=1.0, write_fraction=0.05,
            ),
            # Hash-join probes: singleton touches, no reuse.
            AccessFunctionSpec(
                kind="singleton", weight=0.25, region_fraction=1.0,
                zipf_alpha=0.05, write_fraction=0.05,
            ),
        ),
        dataset_bytes=64 * MB,
        instructions_per_access=150,
    ),
    exist_ok=True,
)


def main() -> None:
    print("Evaluating cache designs on a custom analytics workload ...")
    spec = ExperimentSpec(
        workloads="analytics",
        designs=("baseline", "block", "page", "footprint", "ideal"),
        capacities_mb=256,          # 1MB simulated at the default scale
        num_requests=60_000,
        plugins=(os.path.abspath(__file__),),
    )
    sweep = SweepRunner(store=None, jobs=2).run(spec)
    baseline_ipc = sweep.get(design="baseline").aggregate_ipc
    rows = [
        (
            point.design,
            percent(result.miss_ratio),
            f"{result.offchip_traffic_normalized:.2f}x",
            percent(result.aggregate_ipc / baseline_ipc - 1.0),
        )
        for point, result in sweep.items()
    ]
    print()
    print(
        format_table(
            ("Design", "Miss ratio", "Off-chip traffic", "Perf vs baseline"),
            rows,
            title="Custom analytics workload (256MB nominal, 2 workers)",
        )
    )
    print()
    print(
        "Scans plus hot lookups reward page-level allocation; join probes "
        "punish whole-page fetch - exactly the regime Footprint Cache's "
        "per-page footprints and singleton bypass are built for."
    )


if __name__ == "__main__":
    main()
