#!/usr/bin/env python
"""Custom cache design: plug a third-party design into the registry.

The design registry (:mod:`repro.caches.registry`) is the extension point
for new DRAM cache organisations: register a builder with
``@register_design`` and the design becomes a first-class citizen — it
validates in :class:`~repro.sim.config.CacheConfig`, builds through
:func:`~repro.sim.system.build_system`, sweeps through
:class:`~repro.exp.ExperimentSpec`, and is priced by the Table 4 overhead
model you declare.

The design here is a *pair-fetch* cache: like the paper's sub-blocked
strawman it allocates pages and fetches on demand, but every demand miss
also pulls in the missing block's buddy (the other half of an aligned
128B pair) — a tiny, history-free footprint guess.  It slots between
"subblock" (maximum underprediction) and "footprint" (learned
footprints), which is exactly what the comparison below shows.

The module doubles as a *plugin* (see :mod:`repro.exp.plugins`): the
spec below names this file in ``plugins``, so the process backend's
workers import it on startup and the sweep parallelises.
``exist_ok=True`` keeps the registration import-idempotent (the parent
imports this file both as ``__main__`` and as the plugin).

Usage::

    python examples/custom_design.py
    python -m repro sweep --plugin examples/custom_design.py \
        --designs subblock,pairfetch,footprint --capacities 64 \
        --requests 60000 --jobs 2

"""

import os

from repro.analysis.report import format_table, percent
from repro.caches.registry import register_design
from repro.caches.subblock_cache import SubBlockedCache
from repro.core.overheads import (
    DesignOverheads,
    footprint_tag_bytes,
    sram_latency_cycles,
)
from repro.exp import ExperimentSpec, SweepRunner

MB = 1024 * 1024


class PairFetchCache(SubBlockedCache):
    """Sub-blocked cache that fetches aligned block pairs on a miss."""

    name = "pairfetch"

    def access(self, request, now):
        result = super().access(request, now)
        if result.hit:
            return result
        # Demand miss: also stage the buddy block of the aligned pair.
        # The extra fetch is off the critical path (the demand block
        # already returned) but fully charged to traffic and energy.
        page = request.page_address(self.page_size)
        offset = request.block_index_in_page(self.page_size, self.block_size)
        buddy = offset ^ 1
        line = self._tags.lookup(page)
        if line is not None and not line.demanded_mask & (1 << buddy):
            done = now + result.latency
            self.offchip.access(
                page + buddy * self.block_size, self.block_size, False, done
            )
            self.stacked.access(
                line.frame + buddy * self.block_size, self.block_size, True, done
            )
            line.demanded_mask |= 1 << buddy
            self.stats.counter("fill_blocks").increment()
        return result


def _pairfetch_overheads(capacity_bytes, page_size, associativity):
    # Same per-page metadata as the sub-blocked design: tag, LRU and the
    # two bit vectors; the pairing heuristic itself needs no storage.
    storage = footprint_tag_bytes(capacity_bytes, page_size, associativity)
    return DesignOverheads(
        "pairfetch", capacity_bytes, storage, sram_latency_cycles(storage)
    )


@register_design(
    "pairfetch",
    exist_ok=True,  # import-idempotent: required of plugin modules
    description="sub-blocked cache fetching aligned 128B pairs on a miss",
    page_organised=True,  # open-page policies + page interleaving (Sec 5.2)
    overheads=_pairfetch_overheads,
)
def build_pairfetch(config, stacked, offchip):
    return PairFetchCache(
        stacked,
        offchip,
        capacity_bytes=config.capacity_bytes,
        page_size=config.page_size,
        associativity=config.associativity,
        tag_latency=config.resolved_tag_latency(),
    )


def main() -> None:
    print("Sweeping the registered custom design against the built-ins ...")
    # The custom name is now a valid axis value like any built-in, and
    # naming this file as the spec's plugin lets worker processes
    # re-register it — so the sweep fans out like any built-in grid.
    spec = ExperimentSpec(
        workloads="web_search",
        designs=("subblock", "pairfetch", "footprint"),
        capacities_mb=64,
        num_requests=60_000,
        plugins=(os.path.abspath(__file__),),
    )
    results = SweepRunner(store=None, jobs=2).run(spec)
    rows = []
    for point in results:
        result = results[point]
        rows.append(
            (
                point.design,
                percent(result.miss_ratio),
                f"{result.offchip_traffic_normalized:.2f}x",
                f"{result.aggregate_ipc:.2f}",
            )
        )
    print()
    print(
        format_table(
            ("Design", "Miss ratio", "Off-chip traffic", "IPC"),
            rows,
            title="Custom pair-fetch design vs built-ins (web_search, 64MB)",
        )
    )
    print()
    print(
        "Pair-fetch removes some of the sub-blocked design's cold misses "
        "at a small traffic premium; learned footprints (the paper's "
        "contribution) close the rest of the gap."
    )


if __name__ == "__main__":
    main()
